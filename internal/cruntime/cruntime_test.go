package cruntime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/fsim"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/oci"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/vhttp"
)

type fixture struct {
	eng    *sim.Engine
	fabric *netsim.Fabric
	host   *Host
	node   *hw.Node
	amd    *hw.Node
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	fabric := netsim.New(eng)
	net := vhttp.NewNet(fabric)
	reg := registry.New(fabric, Config2TestRegistry())
	reg.UnpackBW = 0
	for _, im := range oci.Catalog() {
		reg.Push(im)
	}
	reg.Push(&oci.Image{
		Repository: "test/app", Tag: "v1", Arch: "cpu",
		Layers: []oci.Layer{oci.NewLayer("test-app", 1000)},
		Config: oci.Config{
			Env:        map[string]string{"APP_MODE": "image-default"},
			Entrypoint: []string{"/bin/app"},
			WorkingDir: "/srv",
		},
	})
	progs := NewPrograms()
	host := NewHost(eng, net, fabric, progs, reg)
	node := hw.NewNode(fabric, hw.NodeSpec{Name: "hops01", Cluster: "hops", GPUModel: hw.H100SXM, GPUCount: 4})
	amd := hw.NewNode(fabric, hw.NodeSpec{Name: "eldo01", Cluster: "eldorado", GPUModel: hw.MI300A, GPUCount: 4})
	return &fixture{eng: eng, fabric: fabric, host: host, node: node, amd: amd}
}

// Config2TestRegistry returns a high-bandwidth registry config for tests.
func Config2TestRegistry() registry.Config {
	return registry.Config{Name: "test", EgressBW: 1e15}
}

// envProbe captures the ExecContext a program observed.
type envProbe struct {
	ctx  *ExecContext
	err  error
	hold time.Duration // keep running this long after capture
}

func (pr *envProbe) Run(ctx *ExecContext) error {
	pr.ctx = ctx
	ctx.SetReady(true)
	if pr.hold > 0 {
		ctx.Proc.Sleep(pr.hold)
	}
	return pr.err
}

func (f *fixture) registerProbe(hold time.Duration, exitErr error) *envProbe {
	pr := &envProbe{hold: hold, err: exitErr}
	f.host.Programs.Register("test/app", func() Program { return pr })
	return pr
}

func testSpec() Spec {
	return Spec{
		Name:  "app",
		Image: "test/app:v1",
		Env:   map[string]string{"EXPLICIT": "yes"},
		GPUs:  GPURequest{All: true},
	}
}

func TestPodmanDefaultSemantics(t *testing.T) {
	f := newFixture(t)
	pr := f.registerProbe(0, nil)
	pd := &Podman{Host: f.host, DeviceGPUs: true}
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, err := pd.Run(p, f.node, testSpec())
		if err != nil {
			t.Errorf("Run: %v", err)
			return
		}
		p.Wait(c.Done())
	})
	f.eng.Run()
	ctx := pr.ctx
	if ctx == nil {
		t.Fatal("program never ran")
	}
	if ctx.User != "root" || ctx.Home != "/root" {
		t.Fatalf("podman user/home = %s %s, want root /root", ctx.User, ctx.Home)
	}
	if !ctx.RootFSWritable || !ctx.HomeWritable {
		t.Fatal("podman rootfs should be writable (CoW layer)")
	}
	if _, leaked := ctx.Env["PYTHONPATH"]; leaked {
		t.Fatal("podman must not leak the host environment")
	}
	if ctx.Env["APP_MODE"] != "image-default" || ctx.Env["EXPLICIT"] != "yes" {
		t.Fatalf("env layering wrong: %v", ctx.Env)
	}
	if !ctx.GPUVisible || len(ctx.GPUs) != 4 {
		t.Fatalf("gpus: visible=%v n=%d, want all 4", ctx.GPUVisible, len(ctx.GPUs))
	}
	if ctx.WorkingDir != "/srv" {
		t.Fatalf("workdir = %s, want image default /srv", ctx.WorkingDir)
	}
}

func TestPodmanWithoutDeviceFlagHidesGPUs(t *testing.T) {
	f := newFixture(t)
	pr := f.registerProbe(0, nil)
	pd := &Podman{Host: f.host, DeviceGPUs: false}
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, _ := pd.Run(p, f.node, testSpec())
		p.Wait(c.Done())
	})
	f.eng.Run()
	if pr.ctx.GPUVisible {
		t.Fatal("GPUs visible without --device flag")
	}
}

func TestApptainerDefaultSemantics(t *testing.T) {
	f := newFixture(t)
	pr := f.registerProbe(0, nil)
	ap := &Apptainer{Host: f.host} // all defaults
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, err := ap.Run(p, f.node, testSpec())
		if err != nil {
			t.Errorf("Run: %v", err)
			return
		}
		p.Wait(c.Done())
	})
	f.eng.Run()
	ctx := pr.ctx
	if ctx.User != "jdoe" || ctx.Home != "/home/jdoe" {
		t.Fatalf("apptainer user/home = %s %s, want calling user", ctx.User, ctx.Home)
	}
	if !ctx.HomeWritable {
		t.Fatal("default apptainer binds the user home writable")
	}
	if ctx.RootFSWritable {
		t.Fatal("default apptainer rootfs must be read-only")
	}
	if ctx.Env["PYTHONPATH"] != "/opt/site/python3.9/site-packages" {
		t.Fatal("default apptainer must pass the host environment through")
	}
	if ctx.GPUVisible {
		t.Fatal("GPUs must be invisible without --nv")
	}
}

func TestApptainerFixedFlagsMatchPodman(t *testing.T) {
	f := newFixture(t)
	pr := f.registerProbe(0, nil)
	ap := &Apptainer{Host: f.host, FakeRoot: true, WritableTmpfs: true, CleanEnv: true, NoHome: true, NV: true}
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, _ := ap.Run(p, f.node, testSpec())
		p.Wait(c.Done())
	})
	f.eng.Run()
	ctx := pr.ctx
	if ctx.User != "root" || !ctx.RootFSWritable || !ctx.GPUVisible {
		t.Fatalf("fixed apptainer semantics wrong: user=%s writable=%v gpu=%v", ctx.User, ctx.RootFSWritable, ctx.GPUVisible)
	}
	if _, leaked := ctx.Env["PYTHONPATH"]; leaked {
		t.Fatal("--cleanenv must strip host env")
	}
}

func TestApptainerVendorFlagMismatch(t *testing.T) {
	f := newFixture(t)
	pr := f.registerProbe(0, nil)
	// --nv on an AMD node exposes nothing.
	ap := &Apptainer{Host: f.host, NV: true}
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, _ := ap.Run(p, f.amd, testSpec())
		p.Wait(c.Done())
	})
	f.eng.Run()
	if pr.ctx.GPUVisible {
		t.Fatal("--nv must not expose AMD GPUs")
	}
	// --rocm on the AMD node works.
	pr2 := f.registerProbe(0, nil)
	ap2 := &Apptainer{Host: f.host, ROCm: true}
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, _ := ap2.Run(p, f.amd, testSpec())
		p.Wait(c.Done())
	})
	f.eng.Run()
	if !pr2.ctx.GPUVisible {
		t.Fatal("--rocm should expose AMD GPUs")
	}
}

func TestContainerLifecycleAndGPURelease(t *testing.T) {
	f := newFixture(t)
	f.registerProbe(time.Hour, nil)
	pd := &Podman{Host: f.host, DeviceGPUs: true}
	var c *Container
	f.eng.Go("deploy", func(p *sim.Proc) {
		var err error
		c, err = pd.Run(p, f.node, testSpec())
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	f.eng.RunFor(time.Minute)
	if c.State != StateRunning || !c.Ready() {
		t.Fatalf("state = %s ready=%v, want running/ready", c.State, c.Ready())
	}
	if free := len(f.node.FreeGPUs()); free != 0 {
		t.Fatalf("free GPUs while running = %d, want 0", free)
	}
	c.Stop()
	f.eng.Run()
	if c.State != StateKilled {
		t.Fatalf("state after stop = %s", c.State)
	}
	if free := len(f.node.FreeGPUs()); free != 4 {
		t.Fatalf("free GPUs after stop = %d, want 4", free)
	}
	if !c.Done().Fired() {
		t.Fatal("done signal not fired")
	}
}

func TestCrashSetsFailedStateAndLogs(t *testing.T) {
	f := newFixture(t)
	f.registerProbe(0, errors.New("CUDA out of memory"))
	pd := &Podman{Host: f.host, DeviceGPUs: true}
	var c *Container
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, _ = pd.Run(p, f.node, testSpec())
	})
	f.eng.Run()
	if c.State != StateFailed {
		t.Fatalf("state = %s, want failed", c.State)
	}
	if c.ExitErr == nil || !strings.Contains(c.ExitErr.Error(), "CUDA") {
		t.Fatalf("ExitErr = %v", c.ExitErr)
	}
	logs := strings.Join(c.Logs(), "\n")
	if !strings.Contains(logs, "FATAL") {
		t.Fatalf("logs missing crash line: %q", logs)
	}
	if free := len(f.node.FreeGPUs()); free != 4 {
		t.Fatal("GPUs leaked after crash")
	}
}

func TestGPUOversubscriptionRejected(t *testing.T) {
	f := newFixture(t)
	f.registerProbe(time.Hour, nil)
	pd := &Podman{Host: f.host, DeviceGPUs: true}
	var firstErr, secondErr error
	f.eng.Go("deploy", func(p *sim.Proc) {
		_, firstErr = pd.Run(p, f.node, testSpec())
		_, secondErr = pd.Run(p, f.node, testSpec())
	})
	f.eng.RunFor(time.Minute)
	if firstErr != nil {
		t.Fatalf("first run failed: %v", firstErr)
	}
	if secondErr == nil {
		t.Fatal("second all-GPU container should fail to start")
	}
}

func TestPathWritableSemantics(t *testing.T) {
	eng := sim.NewEngine(1)
	fabric := netsim.New(eng)
	models := fsim.New(fabric, fsim.Config{Name: "lustre"})
	ctx := &ExecContext{
		Home: "/home/jdoe", HomeWritable: true, RootFSWritable: false,
		Mounts: []Mount{
			{FS: models, HostPath: "/lustre/models", CtrPath: "/vllm-workspace/models"},
			{FS: models, HostPath: "/lustre/cfg", CtrPath: "/etc/site", ReadOnly: true},
		},
	}
	cases := []struct {
		path string
		want bool
	}{
		{"/vllm-workspace/models/llama", true},
		{"/etc/site/profile", false},
		{"/home/jdoe/.cache", true},
		{"/root/.cache", false},
		{"/usr/lib/python3", false},
	}
	for _, c := range cases {
		if got := ctx.PathWritable(c.path); got != c.want {
			t.Errorf("PathWritable(%s) = %v, want %v", c.path, got, c.want)
		}
	}
	if m, rel, ok := ctx.LookupMount("/vllm-workspace/models/llama/config.json"); !ok || m.HostPath != "/lustre/models" || rel != "/llama/config.json" {
		t.Fatalf("LookupMount = %v %q %v", m, rel, ok)
	}
}

func TestFlattenedFileSource(t *testing.T) {
	f := newFixture(t)
	pr := f.registerProbe(0, nil)
	_ = pr
	lustre := fsim.New(f.fabric, fsim.Config{Name: "lustre", ReadBW: 1000})
	lustre.WriteMeta("/images/app.sif", 5000, time.Time{})
	ap := &Apptainer{Host: f.host, NV: true}
	spec := testSpec()
	spec.FlattenedFile = &Mount{FS: lustre, HostPath: "/images/app.sif"}
	var started time.Duration
	f.eng.Go("deploy", func(p *sim.Proc) {
		c, err := ap.Run(p, f.node, spec)
		if err != nil {
			t.Errorf("Run: %v", err)
			return
		}
		started = f.eng.Since(sim.Epoch)
		p.Wait(c.Done())
	})
	f.eng.Run()
	// 5000 B over 1000 B/s FS read = 5 s before start.
	if got := started.Seconds(); got < 4.9 || got > 5.3 {
		t.Fatalf("flattened start at %.2fs, want ~5s (FS read time)", got)
	}
}

func TestMissingProgramAndImageErrors(t *testing.T) {
	f := newFixture(t)
	pd := &Podman{Host: f.host}
	var progErr, imgErr error
	f.eng.Go("deploy", func(p *sim.Proc) {
		_, progErr = pd.Run(p, f.node, Spec{Name: "x", Image: "test/app:v1"}) // no program registered
		_, imgErr = pd.Run(p, f.node, Spec{Name: "y", Image: "ghost/none:v9"})
	})
	f.eng.Run()
	if progErr == nil || !strings.Contains(progErr.Error(), "no program registered") {
		t.Fatalf("progErr = %v", progErr)
	}
	if imgErr == nil || !strings.Contains(imgErr.Error(), "manifest unknown") {
		t.Fatalf("imgErr = %v", imgErr)
	}
}

func TestRenderPodmanMatchesPaperShape(t *testing.T) {
	pd := &Podman{}
	spec := Spec{
		Name: "vllm", Image: "vllm/vllm-openai:v0.9.1",
		NetworkHost: true, IPCHost: true,
		Entrypoint: []string{"vllm"},
		GPUs:       GPURequest{All: true},
		Env:        map[string]string{"HF_HUB_OFFLINE": "1", "VLLM_NO_USAGE_STATS": "1"},
		Mounts:     []Mount{{HostPath: "./models", CtrPath: "/vllm-workspace/models"}},
		WorkingDir: "/vllm-workspace/models",
		Args:       []string{"serve", "meta-llama/Llama-4-Scout-17B-16E-Instruct", "--tensor_parallel_size=4", "--max-model-len=65536"},
	}
	out := pd.Render(spec)
	for _, want := range []string{
		"podman run", "--rm", "--name=vllm", "--network=host", "--ipc=host",
		"--entrypoint=vllm", "--device nvidia.com/gpu=all",
		`-e "HF_HUB_OFFLINE=1"`, "--volume=./models:/vllm-workspace/models",
		"--workdir=/vllm-workspace/models", "vllm/vllm-openai:v0.9.1",
		"--tensor_parallel_size=4", "--max-model-len=65536",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("podman render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderApptainerMatchesPaperShape(t *testing.T) {
	ap := &Apptainer{FakeRoot: true, WritableTmpfs: true, CleanEnv: true, NoHome: true, NV: true}
	lfs := fsim.New(nil, fsim.Config{Name: "x"})
	spec := Spec{
		Name: "vllm", Image: "vllm/vllm-openai:v0.9.1",
		FlattenedFile: &Mount{FS: lfs, HostPath: "vllm-cuda.sif"},
		Entrypoint:    []string{"vllm"},
		Env:           map[string]string{"HF_HOME": "/root/.cache/huggingface"},
		Mounts:        []Mount{{HostPath: "./models", CtrPath: "/vllm-workspace/models"}},
		WorkingDir:    "/vllm-workspace/models",
		Args:          []string{"serve", "meta-llama/Llama-4-Scout-17B-16E-Instruct"},
	}
	out := ap.Render(spec)
	for _, want := range []string{
		"apptainer exec", "--fakeroot", "--writable-tmpfs", "--cleanenv", "--no-home", "--nv",
		`-e "HF_HOME=/root/.cache/huggingface"`, "--bind ./models:/vllm-workspace/models",
		"--cwd /vllm-workspace/models", "vllm-cuda.sif vllm",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("apptainer render missing %q:\n%s", want, out)
		}
	}
}
