// Package cruntime models container runtimes and the execution environments
// they present to containerized applications.
//
// The same OCI image runs under multiple runtimes — Podman, Apptainer, and
// (via internal/k8s) kubelet — but each runtime has different *default
// semantics*: who the process runs as, whether $HOME is mapped in, whether the
// host environment leaks through, whether the root filesystem is writable,
// and how GPUs become visible. The paper's case study (§3.2) shows vLLM
// crashing under Apptainer defaults and the flag set that fixes it (Fig 5);
// this package reproduces those semantics so the crash and the fix are
// testable behaviours.
//
// Containerized applications are Programs registered per image repository;
// a runtime launches the image's Program inside an ExecContext describing
// exactly the environment that runtime would have constructed.
package cruntime

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/fsim"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/oci"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/vhttp"
)

// Mount binds a host filesystem path into the container.
type Mount struct {
	FS       *fsim.FS
	HostPath string
	CtrPath  string
	ReadOnly bool
}

// GPURequest asks for accelerators. All=true requests every GPU on the node
// (the `--device nvidia.com/gpu=all` form); otherwise Count GPUs.
type GPURequest struct {
	All   bool
	Count int
}

func (g GPURequest) wanted(node *hw.Node) int {
	if g.All {
		return len(node.GPUs)
	}
	return g.Count
}

// Spec is the runtime-agnostic description of a containerized workload:
// what to run, not how a particular runtime runs it.
type Spec struct {
	Name  string
	Image string // reference resolved against a registry
	// FlattenedFile points at a single-file (SIF/SquashFS) image on a
	// filesystem instead of a registry pull.
	FlattenedFile *Mount

	Env         map[string]string
	Mounts      []Mount
	WorkingDir  string
	Entrypoint  []string // override; nil keeps the image entrypoint
	Args        []string
	GPUs        GPURequest
	NetworkHost bool
	IPCHost     bool
	Port        int // primary service port, 0 if none

	// Props is a simulation seam: handles to simulated substrates the
	// program needs (e.g. "ray.cluster" for multi-node inference,
	// "hub" for the git-clone program). Real containers would reach these
	// over the network; the bag keeps the wiring explicit and typed at the
	// consumer.
	Props map[string]any
}

// State is a container lifecycle state.
type State string

const (
	StatePulling  State = "pulling"
	StateStarting State = "starting"
	StateRunning  State = "running"
	StateExited   State = "exited"
	StateFailed   State = "failed"
	StateKilled   State = "killed"
)

// ExecContext is everything a Program can observe about its environment.
// Runtimes construct it according to their semantics.
type ExecContext struct {
	Proc *sim.Proc
	Node *hw.Node
	GPUs []*hw.GPU

	Env            map[string]string
	User           string // "root" or the calling user
	Home           string
	HomeWritable   bool
	RootFSWritable bool
	WorkingDir     string
	Mounts         []Mount
	Args           []string
	Entrypoint     []string
	GPUVisible     bool

	NetworkHost bool
	IPCHost     bool

	// Hostname is the network identity programs Listen on: the node name
	// under host networking, or a pod-scoped name assigned by kubelet.
	Hostname string
	// ImageArch is the accelerator flavor the image was built for
	// ("cuda", "rocm", "cpu"); programs may refuse mismatched hardware.
	ImageArch string
	Props     map[string]any

	Net    *vhttp.Net
	Fabric *netsim.Fabric

	container *Container
}

// Getenv returns the named environment variable ("" when unset).
func (c *ExecContext) Getenv(key string) string { return c.Env[key] }

// LookupMount resolves a container path to its backing mount, preferring the
// longest matching prefix. ok is false for paths inside the container rootfs.
func (c *ExecContext) LookupMount(ctrPath string) (m Mount, rel string, ok bool) {
	bestLen := -1
	for _, cand := range c.Mounts {
		p := strings.TrimSuffix(cand.CtrPath, "/")
		if (ctrPath == p || strings.HasPrefix(ctrPath, p+"/")) && len(p) > bestLen {
			m, ok, bestLen = cand, true, len(p)
			rel = strings.TrimPrefix(ctrPath, p)
		}
	}
	return m, rel, ok
}

// PathWritable reports whether the program can write at ctrPath: inside a
// writable mount, inside a writable home, or anywhere when the rootfs is
// writable.
func (c *ExecContext) PathWritable(ctrPath string) bool {
	if m, _, ok := c.LookupMount(ctrPath); ok {
		return !m.ReadOnly
	}
	if c.Home != "" && (ctrPath == c.Home || strings.HasPrefix(ctrPath, c.Home+"/")) {
		return c.HomeWritable
	}
	return c.RootFSWritable
}

// Logf appends a timestamped line to the container log.
func (c *ExecContext) Logf(format string, args ...any) {
	c.container.appendLog(fmt.Sprintf(format, args...))
}

// SetReady flips the container's readiness (used by probes and deploy waits).
func (c *ExecContext) SetReady(ready bool) {
	c.container.ready = ready
	if ready && c.container.readySig != nil {
		c.container.readySig.Fire()
	}
}

// Container returns the handle for this execution.
func (c *ExecContext) Container() *Container { return c.container }

// Program is a simulated containerized application. Run executes on the
// container's process and returns when the program exits; a non-nil error is
// a crash.
type Program interface {
	Run(ctx *ExecContext) error
}

// ProgramFunc adapts a function to Program.
type ProgramFunc func(ctx *ExecContext) error

// Run implements Program.
func (f ProgramFunc) Run(ctx *ExecContext) error { return f(ctx) }

// Programs maps image repositories to the applications they contain.
type Programs struct {
	factories map[string]func() Program
}

// NewPrograms returns an empty program registry.
func NewPrograms() *Programs {
	return &Programs{factories: make(map[string]func() Program)}
}

// Register binds repo (e.g. "vllm/vllm-openai") to a program factory.
func (ps *Programs) Register(repo string, factory func() Program) {
	ps.factories[repo] = factory
}

// Lookup builds a fresh Program for an image reference.
func (ps *Programs) Lookup(ref string) (Program, error) {
	repo, _ := oci.ParseRef(ref)
	f := ps.factories[repo]
	if f == nil {
		return nil, fmt.Errorf("cruntime: no program registered for image %q", repo)
	}
	return f(), nil
}

// Container is a running (or finished) container instance.
type Container struct {
	ID    string
	Spec  Spec
	Node  *hw.Node
	State State
	// Program is the application instance running inside (for simulation
	// introspection: fault injection, engine metrics).
	Program Program
	// ExitErr is the program's crash error (nil for clean exit or kill).
	ExitErr error

	StartedAt time.Time
	ExitedAt  time.Time

	ready    bool
	readySig *sim.Signal
	done     *sim.Signal
	proc     *sim.Proc
	gpus     []*hw.GPU
	logs     []string
	eng      *sim.Engine
}

// Ready reports application-level readiness (e.g. vLLM finished loading).
func (c *Container) Ready() bool { return c.State == StateRunning && c.ready }

// ReadySignal fires the first time the program reports ready.
func (c *Container) ReadySignal() *sim.Signal { return c.readySig }

// Done fires when the container exits for any reason.
func (c *Container) Done() *sim.Signal { return c.done }

// Logs returns the captured log lines.
func (c *Container) Logs() []string { return append([]string(nil), c.logs...) }

func (c *Container) appendLog(line string) {
	c.logs = append(c.logs, fmt.Sprintf("[%s] %s", c.eng.Now().Format("15:04:05"), line))
}

// Stop kills the container; GPUs release and Done fires.
func (c *Container) Stop() {
	if c.State == StateExited || c.State == StateFailed || c.State == StateKilled {
		return
	}
	c.State = StateKilled
	c.ready = false
	if c.proc != nil {
		c.proc.Kill()
	}
	c.eng.Schedule(0, func() {
		c.release()
		c.done.Fire()
	})
}

func (c *Container) release() {
	if c.Node != nil {
		c.Node.ReleaseGPUs(c.ID)
	}
}

// Runtime launches containers on nodes. Implementations differ in the
// ExecContext semantics they construct — that difference is the point.
type Runtime interface {
	Name() string
	// Run pulls/locates the image and starts the program. It returns once
	// the container has begun executing (state running); use the container's
	// signals to wait for readiness or exit.
	Run(p *sim.Proc, node *hw.Node, spec Spec) (*Container, error)
}

// Host holds per-node runtime state shared by runtimes: the image layer
// cache and the registries images resolve from.
type Host struct {
	Eng      *sim.Engine
	Net      *vhttp.Net
	Fabric   *netsim.Fabric
	Programs *Programs
	Registry *registry.Registry
	Caches   map[string]*registry.LayerCache // node name → layer cache
	// HostEnv simulates the user's login environment (module-loaded paths
	// etc.) that Apptainer passes through by default.
	HostEnv map[string]string
	// CallingUser is the username deploying containers on HPC platforms.
	CallingUser string
	seq         int
}

// NewHost wires shared runtime state.
func NewHost(eng *sim.Engine, net *vhttp.Net, fabric *netsim.Fabric, programs *Programs, reg *registry.Registry) *Host {
	return &Host{
		Eng: eng, Net: net, Fabric: fabric, Programs: programs, Registry: reg,
		Caches:      make(map[string]*registry.LayerCache),
		HostEnv:     map[string]string{"PATH": "/usr/bin", "USER": "jdoe", "PYTHONPATH": "/opt/site/python3.9/site-packages", "LD_LIBRARY_PATH": "/opt/site/lib"},
		CallingUser: "jdoe",
	}
}

func (h *Host) cacheFor(node *hw.Node) *registry.LayerCache {
	c := h.Caches[node.Name]
	if c == nil {
		c = registry.NewLayerCache()
		h.Caches[node.Name] = c
	}
	return c
}

func (h *Host) nextID(prefix string) string {
	h.seq++
	return fmt.Sprintf("%s-%d", prefix, h.seq)
}

// resolveImage pulls the image (or reads its flattened file) and returns its
// config and accelerator arch. The container is in StatePulling for the
// duration.
func (h *Host) resolveImage(p *sim.Proc, node *hw.Node, spec Spec) (oci.Config, string, error) {
	if spec.FlattenedFile != nil {
		m := spec.FlattenedFile
		f := m.FS.Stat(m.HostPath)
		if f == nil {
			return oci.Config{}, "", fmt.Errorf("cruntime: flattened image %s not found on %s", m.HostPath, m.FS.Name)
		}
		// Reading the single file streams from the FS through the node NIC.
		h.Fabric.Transfer(p, float64(f.Size), m.FS.ReadRoute(node.NIC), netsim.StartOptions{})
		// The image config travels with the SIF; resolve from the registry
		// by ref for metadata (offline fallback: zero config).
		if im := h.Registry.Resolve(spec.Image); im != nil {
			return im.Config, im.Arch, nil
		}
		return oci.Config{WorkingDir: "/", Env: map[string]string{}}, "", nil
	}
	im, err := h.Registry.Pull(p, spec.Image, node.NIC, h.cacheFor(node))
	if err != nil {
		return oci.Config{}, "", err
	}
	return im.Config, im.Arch, nil
}

// mergeEnv layers maps left to right (later wins) into a fresh map.
func mergeEnv(layers ...map[string]string) map[string]string {
	out := map[string]string{}
	for _, l := range layers {
		for k, v := range l {
			out[k] = v
		}
	}
	return out
}

// launch starts the program on its own process and manages lifecycle state.
func (h *Host) launch(node *hw.Node, spec Spec, ctx *ExecContext, id string) (*Container, error) {
	prog, err := h.Programs.Lookup(spec.Image)
	if err != nil {
		return nil, err
	}
	c := &Container{
		ID: id, Spec: spec, Node: node, State: StateStarting,
		Program:  prog,
		readySig: h.Eng.NewSignal(), done: h.Eng.NewSignal(),
		eng: h.Eng, StartedAt: h.Eng.Now(),
	}
	ctx.container = c
	want := spec.GPUs.wanted(node)
	if want > 0 {
		gpus, err := node.AllocGPUs(id, want)
		if err != nil {
			return nil, err
		}
		c.gpus = gpus
		ctx.GPUs = gpus
	}
	c.proc = h.Eng.Go("container:"+id, func(p *sim.Proc) {
		ctx.Proc = p
		c.State = StateRunning
		err := prog.Run(ctx)
		c.ExitedAt = h.Eng.Now()
		c.ready = false
		if c.State == StateKilled {
			return // Stop() handles release + done
		}
		if err != nil {
			c.State = StateFailed
			c.ExitErr = err
			c.appendLog("FATAL: " + err.Error())
		} else {
			c.State = StateExited
		}
		c.release()
		c.done.Fire()
	})
	return c, nil
}

// ResolveImage pulls the image (or reads its flattened form) for spec onto
// node, returning its OCI config and accelerator arch. Exported for
// orchestration layers (the kubelet) that build their own ExecContexts.
func (h *Host) ResolveImage(p *sim.Proc, node *hw.Node, spec Spec) (oci.Config, string, error) {
	return h.resolveImage(p, node, spec)
}

// LaunchCustom starts a container with a caller-constructed ExecContext,
// used by orchestration layers that implement their own runtime semantics
// (Kubernetes CRI). The context's container linkage, GPU allocation, and
// lifecycle management are handled here exactly as for Podman/Apptainer.
func (h *Host) LaunchCustom(node *hw.Node, spec Spec, ctx *ExecContext, idPrefix string) (*Container, error) {
	return h.launch(node, spec, ctx, h.nextID(idPrefix))
}

// MergeEnv layers environment maps left to right (later wins).
func MergeEnv(layers ...map[string]string) map[string]string { return mergeEnv(layers...) }

// NewDetachedContainer creates a container record not managed by any
// runtime: a harness for driving Programs directly in tests.
func NewDetachedContainer(eng *sim.Engine) *Container {
	return &Container{
		ID: "detached", State: StateRunning,
		readySig: eng.NewSignal(), done: eng.NewSignal(),
		eng: eng, StartedAt: eng.Now(),
	}
}

// BindContext links an ExecContext to a container so SetReady and Logf work
// when a Program runs outside Host.launch (tests, exec-style invocations).
func BindContext(ctx *ExecContext, c *Container) { ctx.container = c }

// envString renders env for CLI output, sorted for determinism.
func envString(env map[string]string, flag string) []string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s \"%s=%s\"", flag, k, env[k]))
	}
	return out
}
