package cruntime

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Podman is a rootless-daemonless OCI runtime with cloud-native defaults:
// the process runs as root inside an isolated user namespace, the container
// filesystem has a writable copy-on-write layer, only image + explicit
// environment is visible, and no host directories are mapped unless bound.
// GPUs require an explicit --device request (CDI).
type Podman struct {
	Host *Host
	// DeviceGPUs mirrors `--device nvidia.com/gpu=all`; without it the
	// container sees no accelerators even on a GPU node.
	DeviceGPUs bool
}

// Name implements Runtime.
func (pd *Podman) Name() string { return "podman" }

// Run implements Runtime with Podman default semantics.
func (pd *Podman) Run(p *sim.Proc, node *hw.Node, spec Spec) (*Container, error) {
	h := pd.Host
	id := h.nextID("podman")
	cfg, arch, err := h.resolveImage(p, node, spec)
	if err != nil {
		return nil, err
	}
	entry := cfg.Entrypoint
	if len(spec.Entrypoint) > 0 {
		entry = spec.Entrypoint
	}
	workdir := cfg.WorkingDir
	if spec.WorkingDir != "" {
		workdir = spec.WorkingDir
	}
	ctx := &ExecContext{
		Node: node,
		// Isolated environment: image env, then explicit -e flags. HOME is
		// root's because the container user is root.
		Env:            mergeEnv(cfg.Env, spec.Env, map[string]string{"HOME": "/root"}),
		User:           "root",
		Home:           "/root",
		HomeWritable:   true,
		RootFSWritable: true, // copy-on-write upper layer
		WorkingDir:     workdir,
		Mounts:         spec.Mounts,
		Args:           spec.Args,
		Entrypoint:     entry,
		GPUVisible:     pd.DeviceGPUs && spec.GPUs.wanted(node) > 0,
		NetworkHost:    spec.NetworkHost,
		IPCHost:        spec.IPCHost,
		Hostname:       node.Name,
		ImageArch:      arch,
		Props:          spec.Props,
		Net:            h.Net,
		Fabric:         h.Fabric,
	}
	return h.launch(node, spec, ctx, id)
}

// Render returns the equivalent `podman run` command line, mirroring the
// paper's Figure 4. It is what cmd/genaictl prints for HPC deployments.
func (pd *Podman) Render(spec Spec) string {
	var b strings.Builder
	b.WriteString("podman run \\\n  --rm \\\n")
	fmt.Fprintf(&b, "  --name=%s \\\n", spec.Name)
	if spec.NetworkHost {
		b.WriteString("  --network=host \\\n")
	}
	if spec.IPCHost {
		b.WriteString("  --ipc=host \\\n")
	}
	if len(spec.Entrypoint) > 0 {
		fmt.Fprintf(&b, "  --entrypoint=%s \\\n", spec.Entrypoint[0])
	}
	if spec.GPUs.All {
		b.WriteString("  --device nvidia.com/gpu=all \\\n")
	} else if spec.GPUs.Count > 0 {
		for i := 0; i < spec.GPUs.Count; i++ {
			fmt.Fprintf(&b, "  --device nvidia.com/gpu=%d \\\n", i)
		}
	}
	for _, e := range envString(spec.Env, "-e") {
		fmt.Fprintf(&b, "  %s \\\n", e)
	}
	for _, m := range spec.Mounts {
		suffix := ""
		if m.ReadOnly {
			suffix = ":ro"
		}
		fmt.Fprintf(&b, "  --volume=%s:%s%s \\\n", m.HostPath, m.CtrPath, suffix)
	}
	if spec.WorkingDir != "" {
		fmt.Fprintf(&b, "  --workdir=%s \\\n", spec.WorkingDir)
	}
	b.WriteString("  " + spec.Image)
	for _, a := range spec.Args {
		b.WriteString(" \\\n    " + a)
	}
	return b.String()
}
