package cruntime

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Apptainer is the HPC-native runtime. Its defaults differ from Podman in
// exactly the ways that crash the vLLM container (§3.2):
//
//   - the process runs as the *calling user*, not root;
//   - the user's home directory is bind-mounted and $HOME points at it;
//   - the host environment is passed through (module paths, PYTHONPATH);
//   - the container filesystem is read-only;
//   - GPUs are invisible without --nv (NVIDIA) or --rocm (AMD).
//
// The flag set from the paper's Figure 5 (--fakeroot --writable-tmpfs
// --cleanenv --no-home --nv) restores Podman-like semantics.
type Apptainer struct {
	Host *Host

	FakeRoot      bool // --fakeroot: appear as root inside
	WritableTmpfs bool // --writable-tmpfs: ephemeral writable overlay
	CleanEnv      bool // --cleanenv: do not pass the host environment
	NoHome        bool // --no-home: do not bind the caller's $HOME
	NV            bool // --nv: expose NVIDIA GPUs
	ROCm          bool // --rocm: expose AMD GPUs
	Cwd           string
}

// Name implements Runtime.
func (ap *Apptainer) Name() string { return "apptainer" }

// Run implements Runtime with Apptainer semantics.
func (ap *Apptainer) Run(p *sim.Proc, node *hw.Node, spec Spec) (*Container, error) {
	h := ap.Host
	id := h.nextID("apptainer")
	cfg, arch, err := h.resolveImage(p, node, spec)
	if err != nil {
		return nil, err
	}
	entry := cfg.Entrypoint
	if len(spec.Entrypoint) > 0 {
		entry = spec.Entrypoint
	}
	user := h.CallingUser
	home := "/home/" + user
	homeWritable := !ap.NoHome
	if ap.FakeRoot {
		user = "root"
		home = "/root"
		homeWritable = ap.WritableTmpfs // /root lives in the (ro) rootfs
	}
	layers := []map[string]string{}
	if !ap.CleanEnv {
		layers = append(layers, h.HostEnv) // host env passes through
	}
	layers = append(layers, cfg.Env, spec.Env, map[string]string{"HOME": home})
	gpuVisible := false
	if spec.GPUs.wanted(node) > 0 && len(node.GPUs) > 0 {
		switch node.GPUs[0].Model.Vendor {
		case hw.NVIDIA:
			gpuVisible = ap.NV
		case hw.AMD:
			gpuVisible = ap.ROCm
		}
	}
	workdir := cfg.WorkingDir
	if ap.Cwd != "" {
		workdir = ap.Cwd
	} else if spec.WorkingDir != "" {
		workdir = spec.WorkingDir
	}
	ctx := &ExecContext{
		Node:           node,
		Env:            mergeEnv(layers...),
		User:           user,
		Home:           home,
		HomeWritable:   homeWritable,
		RootFSWritable: ap.WritableTmpfs,
		WorkingDir:     workdir,
		Mounts:         spec.Mounts,
		Args:           spec.Args,
		Entrypoint:     entry,
		GPUVisible:     gpuVisible,
		NetworkHost:    true, // apptainer shares the host network namespace
		IPCHost:        true,
		Hostname:       node.Name,
		ImageArch:      arch,
		Props:          spec.Props,
		Net:            h.Net,
		Fabric:         h.Fabric,
	}
	return h.launch(node, spec, ctx, id)
}

// Render returns the equivalent `apptainer exec` command line, mirroring the
// paper's Figure 5.
func (ap *Apptainer) Render(spec Spec) string {
	var b strings.Builder
	b.WriteString("apptainer exec \\\n")
	if ap.FakeRoot {
		b.WriteString("  --fakeroot \\\n")
	}
	if ap.WritableTmpfs {
		b.WriteString("  --writable-tmpfs \\\n")
	}
	if ap.CleanEnv {
		b.WriteString("  --cleanenv \\\n")
	}
	if ap.NoHome {
		b.WriteString("  --no-home \\\n")
	}
	if ap.NV {
		b.WriteString("  --nv \\\n")
	}
	if ap.ROCm {
		b.WriteString("  --rocm \\\n")
	}
	for _, e := range envString(spec.Env, "-e") {
		fmt.Fprintf(&b, "  %s \\\n", e)
	}
	for _, m := range spec.Mounts {
		fmt.Fprintf(&b, "  --bind %s:%s \\\n", m.HostPath, m.CtrPath)
	}
	cwd := ap.Cwd
	if cwd == "" {
		cwd = spec.WorkingDir
	}
	if cwd != "" {
		fmt.Fprintf(&b, "  --cwd %s \\\n", cwd)
	}
	image := spec.Image
	if spec.FlattenedFile != nil {
		image = spec.FlattenedFile.HostPath
	}
	b.WriteString("  " + image)
	if len(spec.Entrypoint) > 0 {
		b.WriteString(" " + strings.Join(spec.Entrypoint, " "))
	}
	for _, a := range spec.Args {
		b.WriteString(" \\\n    " + a)
	}
	return b.String()
}
