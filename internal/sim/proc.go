package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrKilled is delivered to a process blocked in Sleep or Wait when Kill is
// called on it.
var ErrKilled = errors.New("sim: process killed")

// Proc is a cooperative simulated process. A Proc runs on its own goroutine
// but control is handed off strictly: the engine (or the process that woke
// it) blocks until the Proc parks again, so at most one process or event
// handler executes at any instant. This preserves determinism while letting
// simulation code read sequentially (sleep, wait, call).
type Proc struct {
	eng    *Engine
	name   string
	resume chan error    // engine -> proc: run (non-nil error = killed)
	yield  chan struct{} // proc -> engine: parked or finished
	killed bool
	done   bool
}

// Go starts fn as a new process at the current virtual time.
// The returned Proc may be used to Kill the process or wait for it.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan error),
		yield:  make(chan struct{}),
	}
	started := false
	e.Schedule(0, func() {
		started = true
		go func() {
			err := <-p.resume
			if err == nil {
				func() {
					defer func() {
						if r := recover(); r != nil {
							if r != errKillSentinel {
								panic(r)
							}
						}
					}()
					fn(p)
				}()
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		p.transfer(nil)
	})
	_ = started
	return p
}

var errKillSentinel = new(int)

// transfer hands control to the process and blocks until it parks or exits.
// It must run on the engine goroutine (inside an event handler).
func (p *Proc) transfer(err error) {
	if p.done {
		return
	}
	p.resume <- err
	<-p.yield
}

// park gives control back to whoever resumed the process and blocks until
// the next wake-up. Returns a non-nil error if the process was killed.
func (p *Proc) park() error {
	p.yield <- struct{}{}
	err := <-p.resume
	if err != nil {
		p.killed = true
		panic(errKillSentinel)
	}
	return nil
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Time { return p.eng.Now() }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.Schedule(d, func() { p.transfer(nil) })
	_ = p.park()
}

// Kill terminates the process the next time it is parked. Pending Sleeps and
// Waits never return; the process unwinds. Safe to call from event handlers
// or other processes. Killing a finished process is a no-op.
func (p *Proc) Kill() {
	p.eng.Schedule(0, func() {
		if p.done {
			return
		}
		p.transfer(ErrKilled)
	})
}

// Done reports whether the process has finished (normally or via Kill).
func (p *Proc) Done() bool { return p.done }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// Signal is a one-shot broadcast synchronization point in virtual time.
// Processes Wait on it; Fire wakes all current and future waiters.
type Signal struct {
	eng     *Engine
	fired   bool
	waiters []func()
}

// NewSignal returns an unfired signal bound to e.
func (e *Engine) NewSignal() *Signal { return &Signal{eng: e} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire wakes every waiter. Waiters run as fresh events at the current
// virtual time, preserving deterministic ordering. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, fn := range s.waiters {
		s.eng.Schedule(0, fn)
	}
	s.waiters = nil
}

// OnFire registers fn to run when the signal fires (immediately, as a new
// event, if it already has).
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		s.eng.Schedule(0, fn)
		return
	}
	s.waiters = append(s.waiters, fn)
}

// Wait suspends the process until the signal fires.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	s.OnFire(func() { p.transfer(nil) })
	_ = p.park()
}

// WaitTimeout waits for the signal for at most d. It reports whether the
// signal fired (false means the timeout elapsed first).
func (p *Proc) WaitTimeout(s *Signal, d time.Duration) bool {
	if s.fired {
		return true
	}
	fired := false
	woken := false
	s.OnFire(func() {
		if woken {
			return
		}
		woken = true
		fired = true
		p.transfer(nil)
	})
	p.eng.Schedule(d, func() {
		if woken {
			return
		}
		woken = true
		p.transfer(nil)
	})
	_ = p.park()
	return fired
}

// Future carries a value resolved at some virtual time.
type Future[T any] struct {
	sig *Signal
	val T
	err error
}

// NewFuture returns an unresolved future bound to e.
func NewFuture[T any](e *Engine) *Future[T] {
	return &Future[T]{sig: e.NewSignal()}
}

// Resolve sets the value and wakes waiters. Resolving twice is a no-op.
func (f *Future[T]) Resolve(v T, err error) {
	if f.sig.Fired() {
		return
	}
	f.val, f.err = v, err
	f.sig.Fire()
}

// Ready reports whether the future has been resolved.
func (f *Future[T]) Ready() bool { return f.sig.Fired() }

// Signal exposes the underlying signal (for OnFire-style consumers).
func (f *Future[T]) Signal() *Signal { return f.sig }

// Value returns the resolved value; valid only after Ready.
func (f *Future[T]) Value() (T, error) { return f.val, f.err }

// Await suspends the process until the future resolves, returning its value.
func Await[T any](p *Proc, f *Future[T]) (T, error) {
	p.Wait(f.sig)
	return f.val, f.err
}

// Group tracks a set of processes or tasks and fires when all are done,
// analogous to sync.WaitGroup in virtual time.
type Group struct {
	eng  *Engine
	n    int
	done *Signal
}

// NewGroup returns an empty group (already satisfied).
func (e *Engine) NewGroup() *Group {
	return &Group{eng: e, done: e.NewSignal()}
}

// Add registers n more outstanding tasks.
func (g *Group) Add(n int) { g.n += n }

// Finish marks one task complete, firing the signal at zero outstanding.
func (g *Group) Finish() {
	g.n--
	if g.n < 0 {
		panic("sim: Group.Finish without matching Add")
	}
	if g.n == 0 {
		g.done.Fire()
	}
}

// WaitAll suspends the process until the group drains. A group with no
// outstanding tasks returns immediately.
//
// A group may legitimately drain to zero and refill (an open-loop driver
// whose in-flight set empties between arrivals), and the underlying Signal
// is one-shot — so WaitAll re-arms a fresh signal and keeps waiting until
// the count is zero at wake time, rather than returning on a stale fire
// with work still outstanding.
func (g *Group) WaitAll(p *Proc) {
	for g.n > 0 {
		if g.done.Fired() {
			g.done = g.eng.NewSignal()
		}
		p.Wait(g.done)
	}
}
