package sim

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now().Sub(Epoch) != 3*time.Second {
		t.Fatalf("clock = %v, want 3s after epoch", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var at []time.Duration
	e.Schedule(time.Second, func() {
		at = append(at, e.Since(Epoch))
		e.Schedule(2*time.Second, func() {
			at = append(at, e.Since(Epoch))
		})
	})
	e.Run()
	if len(at) != 2 || at[0] != time.Second || at[1] != 3*time.Second {
		t.Fatalf("fire times = %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(Epoch.Add(3 * time.Second))
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if !e.Now().Equal(Epoch.Add(3 * time.Second)) {
		t.Fatalf("clock = %v", e.Now())
	}
	e.Run()
	if count != 5 {
		t.Fatalf("after Run count = %d, want 5", count)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(time.Minute)
	if e.Since(Epoch) != time.Minute {
		t.Fatalf("clock = %v, want 1m", e.Since(Epoch))
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	e.Schedule(time.Second, func() { count++; e.Stop() })
	e.Schedule(2*time.Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var trace []int64
		var step func(depth int)
		step = func(depth int) {
			trace = append(trace, e.Since(Epoch).Nanoseconds(), int64(e.Rand().Intn(1000)))
			if depth < 50 {
				e.Schedule(time.Duration(e.Rand().Intn(100))*time.Millisecond, func() { step(depth + 1) })
			}
		}
		e.Schedule(0, func() { step(0) })
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake []time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(time.Second)
		wake = append(wake, e.Since(Epoch))
		p.Sleep(2 * time.Second)
		wake = append(wake, e.Since(Epoch))
	})
	e.Run()
	if len(wake) != 2 || wake[0] != time.Second || wake[1] != 3*time.Second {
		t.Fatalf("wake times = %v", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Go("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, "a")
			p.Sleep(2 * time.Second)
		}
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			got = append(got, "b")
			p.Sleep(2 * time.Second)
		}
	})
	e.Run()
	want := "ababab"
	var s string
	for _, g := range got {
		s += g
	}
	if s != want {
		t.Fatalf("interleaving = %q, want %q", s, want)
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	s := e.NewSignal()
	var woke int
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			p.Wait(s)
			woke++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		s.Fire()
	})
	e.Run()
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
	// Late waiter on a fired signal returns immediately.
	late := false
	e.Go("late", func(p *Proc) { p.Wait(s); late = true })
	e.Run()
	if !late {
		t.Fatal("late waiter did not wake on fired signal")
	}
}

func TestWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	s := e.NewSignal()
	var fired, timedOut bool
	e.Go("t1", func(p *Proc) { fired = p.WaitTimeout(s, 10*time.Second) })
	e.Go("t2", func(p *Proc) { timedOut = !p.WaitTimeout(s, time.Second) })
	e.Go("firer", func(p *Proc) { p.Sleep(5 * time.Second); s.Fire() })
	e.Run()
	if !fired {
		t.Fatal("10s waiter should have seen the 5s fire")
	}
	if !timedOut {
		t.Fatal("1s waiter should have timed out")
	}
}

func TestProcKill(t *testing.T) {
	e := NewEngine(1)
	reached := false
	p := e.Go("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		reached = true
	})
	e.Go("killer", func(k *Proc) {
		k.Sleep(time.Second)
		p.Kill()
	})
	e.Run()
	if reached {
		t.Fatal("killed process continued past Sleep")
	}
	if !p.Done() {
		t.Fatal("killed process not marked done")
	}
}

func TestKillRunsDeferred(t *testing.T) {
	e := NewEngine(1)
	cleaned := false
	p := e.Go("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
	})
	e.Go("killer", func(k *Proc) { p.Kill() })
	e.Run()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Kill")
	}
}

func TestFuture(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	var got int
	e.Go("consumer", func(p *Proc) {
		v, err := Await(p, f)
		if err != nil {
			t.Errorf("Await err = %v", err)
		}
		got = v
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(time.Second)
		f.Resolve(42, nil)
	})
	e.Run()
	if got != 42 {
		t.Fatalf("got = %d, want 42", got)
	}
}

func TestGroup(t *testing.T) {
	e := NewEngine(1)
	g := e.NewGroup()
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		g.Add(1)
		e.Go("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			g.Finish()
		})
	}
	e.Go("waiter", func(p *Proc) {
		g.WaitAll(p)
		doneAt = e.Since(Epoch)
	})
	e.Run()
	if doneAt != 3*time.Second {
		t.Fatalf("group drained at %v, want 3s", doneAt)
	}
}

// TestGroupDrainAndRefill covers the open-loop driver shape: the in-flight
// set transiently drains to zero (firing the group's one-shot signal), then
// more work arrives. WaitAll must wait for the final drain, not return on
// the stale fire with work still outstanding.
func TestGroupDrainAndRefill(t *testing.T) {
	e := NewEngine(1)
	g := e.NewGroup()
	finished := 0
	spawn := func(start, dur time.Duration) {
		g.Add(1)
		e.Go("worker", func(p *Proc) {
			p.Sleep(start + dur)
			finished++
			g.Finish()
		})
	}
	var sawFinished int
	var doneAt time.Duration
	e.Go("driver", func(p *Proc) {
		spawn(0, time.Second) // drains at 1s...
		p.Sleep(2 * time.Second)
		spawn(0, 3*time.Second) // ...refills at 2s, drains at 5s
		g.WaitAll(p)
		sawFinished = finished
		doneAt = e.Since(Epoch)
	})
	e.Run()
	if sawFinished != 2 {
		t.Fatalf("WaitAll returned with %d of 2 tasks finished", sawFinished)
	}
	if doneAt != 5*time.Second {
		t.Fatalf("group drained at %v, want 5s", doneAt)
	}
}

func TestRealtimeInjection(t *testing.T) {
	e := NewEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	go e.RunRealtime(ctx, 1e6) // very fast scaling

	var ran atomic.Bool
	done := make(chan struct{})
	e.Inject(func() {
		e.Schedule(time.Minute, func() { // one virtual minute = 60us wall
			ran.Store(true)
			close(done)
		})
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("realtime runner did not execute injected event")
	}
	cancel()
	if !ran.Load() {
		t.Fatal("event not run")
	}
}

func TestCallBridge(t *testing.T) {
	e := NewEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.RunRealtime(ctx, 1e6)

	at := e.Call(func(done func()) {
		e.Schedule(10*time.Second, func() { done() })
	})
	if at.Sub(Epoch) < 10*time.Second {
		t.Fatalf("Call returned at %v, want >= 10s after epoch", at.Sub(Epoch))
	}
}
