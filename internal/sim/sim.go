// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated subsystems in this repository (networks, filesystems,
// schedulers, inference engines) advance on a single virtual clock owned by an
// Engine. Events fire in (time, sequence) order, so two runs with the same
// seed produce identical histories. Cooperative processes (Proc) layer a
// synchronous programming style on top of the event loop with strict handoff:
// at most one process or event handler executes at a time.
//
// The engine can run in two modes: Run drains events as fast as possible in
// virtual time (used by tests and benchmark harnesses), while RunRealtime maps
// virtual durations onto scaled wall-clock time so the simulated services can
// be exposed over real sockets (used by cmd/sitesim and the examples).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Epoch is the virtual time at which every new Engine starts. The concrete
// date is arbitrary; a fixed epoch keeps logs and golden files stable.
var Epoch = time.Date(2025, 6, 2, 8, 0, 0, 0, time.UTC)

// Timer is a handle to a scheduled event. It may be stopped before it fires.
type Timer struct {
	at      time.Time
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 once popped
}

// Stop cancels the timer. It is a no-op if the timer already fired.
// It reports whether the call prevented the timer from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.index == -1 {
		return false
	}
	t.stopped = true
	return true
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() time.Time { return t.at }

type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

// Engine is a discrete-event simulator with a virtual clock.
// The zero value is not usable; call NewEngine.
type Engine struct {
	mu      sync.Mutex
	now     time.Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	running bool
	stopped bool

	injectCh chan struct{} // wakes the realtime runner

	// Trace, when non-nil, receives a line for every event executed.
	// Intended for debugging; nil in normal operation.
	Trace func(t time.Time, label string)
}

// NewEngine returns an engine positioned at Epoch with a deterministic
// random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		now:      Epoch,
		rng:      rand.New(rand.NewSource(seed)),
		injectCh: make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Since returns the virtual duration elapsed since t.
func (e *Engine) Since(t time.Time) time.Duration { return e.Now().Sub(t) }

// Rand returns the engine's deterministic random source. It must only be
// used from event handlers and processes (the engine goroutine).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after d of virtual time. Negative durations are clamped
// to zero. fn executes on the engine's event loop.
func (e *Engine) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.scheduleLocked(e.now.Add(d), fn)
}

// At runs fn at virtual time t (clamped to now if t is in the past).
func (e *Engine) At(t time.Time, fn func()) *Timer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t.Before(e.now) {
		t = e.now
	}
	return e.scheduleLocked(t, fn)
}

func (e *Engine) scheduleLocked(t time.Time, fn func()) *Timer {
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, tm)
	select {
	case e.injectCh <- struct{}{}:
	default:
	}
	return tm
}

// Inject schedules fn at the current virtual time from any goroutine.
// It is the only safe way for code outside the engine loop (for example a
// real HTTP handler in realtime mode) to interact with simulated state.
func (e *Engine) Inject(fn func()) { e.Schedule(0, fn) }

// Stop makes Run and RunRealtime return after the current event completes.
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
	select {
	case e.injectCh <- struct{}{}:
	default:
	}
}

// pop removes and returns the next runnable event, skipping stopped timers.
// It returns nil when the queue is empty.
func (e *Engine) pop() *Timer {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) > 0 {
		tm := heap.Pop(&e.queue).(*Timer)
		if tm.stopped {
			continue
		}
		e.now = tm.at
		return tm
	}
	return nil
}

// peekTime returns the time of the next pending event.
func (e *Engine) peekTime() (time.Time, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) > 0 {
		if e.queue[0].stopped {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return time.Time{}, false
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	tm := e.pop()
	if tm == nil {
		return false
	}
	if e.Trace != nil {
		e.Trace(tm.at, fmt.Sprintf("event #%d", tm.seq))
	}
	tm.fn()
	return true
}

// Run drains the event queue in virtual time. It returns when no events
// remain or Stop was called.
func (e *Engine) Run() {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		panic("sim: Engine.Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.running = false
		e.mu.Unlock()
	}()
	for {
		e.mu.Lock()
		stop := e.stopped
		e.mu.Unlock()
		if stop || !e.Step() {
			return
		}
	}
}

// RunUntil drains events with fire times not after deadline, then advances
// the clock to deadline.
func (e *Engine) RunUntil(deadline time.Time) {
	for {
		t, ok := e.peekTime()
		if !ok || t.After(deadline) {
			break
		}
		if !e.Step() {
			break
		}
		e.mu.Lock()
		stop := e.stopped
		e.mu.Unlock()
		if stop {
			return
		}
	}
	e.mu.Lock()
	if e.now.Before(deadline) {
		e.now = deadline
	}
	e.mu.Unlock()
}

// RunFor drains events within d of the current virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.Now().Add(d)) }

// Pending reports how many events are queued (including stopped timers that
// have not been collected yet). Intended for tests.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}
