package sim

import (
	"context"
	"time"
)

// RunRealtime executes events mapping virtual time onto wall-clock time
// divided by scale (scale 60 makes one virtual minute pass per wall second).
// Unlike Run it does not return when the queue drains; it idles until new
// events are injected, the context is cancelled, or Stop is called.
//
// RunRealtime is how the simulated site is exposed over real sockets: HTTP
// handler goroutines call Engine.Inject to enter the simulation and receive
// results over channels.
func (e *Engine) RunRealtime(ctx context.Context, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		panic("sim: Engine.RunRealtime called re-entrantly")
	}
	e.running = true
	e.stopped = false
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.running = false
		e.mu.Unlock()
	}()

	// Anchor: virtual vAnchor corresponds to wall wAnchor. Re-anchored when
	// the engine idles so injected events run promptly after quiet periods.
	vAnchor := e.Now()
	wAnchor := time.Now()

	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		e.mu.Lock()
		stop := e.stopped
		e.mu.Unlock()
		if stop {
			return
		}

		next, ok := e.peekTime()
		if !ok {
			// Idle: wait for an injection or cancellation.
			select {
			case <-ctx.Done():
				return
			case <-e.injectCh:
			}
			vAnchor = e.Now()
			wAnchor = time.Now()
			continue
		}

		wallDue := wAnchor.Add(time.Duration(float64(next.Sub(vAnchor)) / scale))
		wait := time.Until(wallDue)
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-e.injectCh:
				timer.Stop()
				// A new (possibly earlier) event arrived; re-evaluate.
				continue
			case <-timer.C:
			}
		}
		e.Step()
	}
}

// Call runs fn inside the simulation from an external goroutine and blocks
// until done() is invoked, returning the virtual time at which it completed.
// It is the bridge real HTTP handlers use in realtime mode.
func (e *Engine) Call(fn func(done func())) time.Time {
	ch := make(chan time.Time, 1)
	e.Inject(func() {
		fn(func() { ch <- e.Now() })
	})
	return <-ch
}
