package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// ArtifactPoint is one sweep point flattened for the JSON artifact.
type ArtifactPoint struct {
	Name        string `json:"name"`
	Concurrency int    `json:"concurrency"`
	Completed   int    `json:"completed"`
	Failed      int    `json:"failed"`

	DurationS         float64 `json:"duration_s"`
	RequestThroughput float64 `json:"request_throughput_rps"`
	OutputThroughput  float64 `json:"output_throughput_tps"`

	TTFTMeanMs   float64 `json:"ttft_mean_ms"`
	TTFTMedianMs float64 `json:"ttft_median_ms"`
	TTFTP99Ms    float64 `json:"ttft_p99_ms"`
	TPOTMeanMs   float64 `json:"tpot_mean_ms"`
	ITLMeanMs    float64 `json:"itl_mean_ms,omitempty"`
	ITLP99Ms     float64 `json:"itl_p99_ms,omitempty"`
	E2EMeanMs    float64 `json:"e2e_mean_ms"`

	Crashed bool `json:"crashed,omitempty"`
}

// Artifact is the machine-readable benchmark record (BENCH_*.json): the
// performance trajectory CI archives per commit so regressions and
// re-anchors have numbers to diff against.
type Artifact struct {
	Label   string          `json:"label"`
	Streams bool            `json:"streaming"`
	Points  []ArtifactPoint `json:"points"`
}

// NewArtifact flattens sweep results into an artifact.
func NewArtifact(label string, streaming bool, results []*Result) *Artifact {
	a := &Artifact{Label: label, Streams: streaming}
	for _, r := range results {
		a.Points = append(a.Points, ArtifactPoint{
			Name: r.Name, Concurrency: r.Concurrency,
			Completed: r.Completed, Failed: r.Failed,
			DurationS:         r.Duration.Seconds(),
			RequestThroughput: r.RequestThroughput,
			OutputThroughput:  r.OutputThroughput,
			TTFTMeanMs:        r.TTFT.Mean(),
			TTFTMedianMs:      r.TTFT.Median(),
			TTFTP99Ms:         r.TTFT.P99(),
			TPOTMeanMs:        r.TPOT.Mean(),
			ITLMeanMs:         r.ITL.Mean(),
			ITLP99Ms:          r.ITL.P99(),
			E2EMeanMs:         r.E2E.Mean(),
			Crashed:           r.Crashed,
		})
	}
	return a
}

// WriteArtifact renders sweep results as indented JSON at path.
func WriteArtifact(path, label string, streaming bool, results []*Result) error {
	body, err := json.MarshalIndent(NewArtifact(label, streaming, results), "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode artifact: %w", err)
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}
