package bench

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cruntime"
	"repro/internal/sharegpt"
	"repro/internal/vhttp"
)

// ContainerProgram is the application in the vllm/vllm-bench image: the
// benchmark_serving.py invocation of Figure 8, runnable under any runtime.
// After the run the Result field holds the measurements (reachable through
// Container.Program).
type ContainerProgram struct {
	Result *Result
}

// Run implements cruntime.Program. Recognized arguments mirror the script:
//
//	--backend openai-chat --endpoint /v1/chat/completions
//	--base-url URL --dataset-name=sharegpt --dataset-path=...
//	--model NAME --max-concurrency N --num-prompts N --seed N
func (bp *ContainerProgram) Run(ctx *cruntime.ExecContext) error {
	args := ctx.Args
	cfg := Config{NumPrompts: 1000, MaxConcurrency: 1, Seed: 0}
	baseURL, model := "", ""
	datasetName := "sharegpt"
	stream := false
	get := func(i int, name string) (string, int, error) {
		arg := args[i]
		if eq := strings.Index(arg, "="); eq >= 0 {
			return arg[eq+1:], i, nil
		}
		if i+1 >= len(args) {
			return "", i, fmt.Errorf("benchmark_serving: %s needs a value", name)
		}
		return args[i+1], i + 1, nil
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		name := a
		if eq := strings.Index(a, "="); eq >= 0 {
			name = a[:eq]
		}
		var val string
		var err error
		switch name {
		case "--base-url":
			val, i, err = get(i, name)
			baseURL = val
		case "--model":
			val, i, err = get(i, name)
			model = val
		case "--dataset-name":
			val, i, err = get(i, name)
			datasetName = val
		case "--max-concurrency":
			val, i, err = get(i, name)
			if err == nil {
				cfg.MaxConcurrency, err = strconv.Atoi(val)
			}
		case "--num-prompts":
			val, i, err = get(i, name)
			if err == nil {
				cfg.NumPrompts, err = strconv.Atoi(val)
			}
		case "--seed":
			val, i, err = get(i, name)
			if err == nil {
				var s int64
				s, err = strconv.ParseInt(val, 10, 64)
				cfg.Seed = s
			}
		case "--stream":
			// Valueless flag, like the real script's store_true arguments.
			stream = true
		case "--backend", "--endpoint", "--dataset-path":
			_, i, err = get(i, name)
		}
		if err != nil {
			return err
		}
	}
	if baseURL == "" {
		return fmt.Errorf("benchmark_serving: --base-url is required")
	}
	if ds, ok := ctx.Props["bench.dataset"].(*sharegpt.Dataset); ok {
		cfg.Dataset = ds
	} else if datasetName == "sharegpt" {
		cfg.Dataset = sharegpt.Synthesize(0, 4000)
	} else {
		return fmt.Errorf("benchmark_serving: unsupported dataset %q", datasetName)
	}
	cfg.Name = fmt.Sprintf("bench-%s-c%d", ctx.Node.Name, cfg.MaxConcurrency)
	target := &HTTPTarget{
		Client:  &vhttp.Client{Net: ctx.Net, From: ctx.Hostname},
		BaseURL: baseURL,
		Model:   model,
		Stream:  stream,
	}
	res := Run(ctx.Proc, target, cfg)
	bp.Result = res
	for _, line := range strings.Split(strings.TrimSpace(res.String()), "\n") {
		ctx.Logf("%s", line)
	}
	if res.Crashed {
		return fmt.Errorf("benchmark aborted: %s", res.CrashMsg)
	}
	return nil
}

// RegisterProgram wires the bench image into a program registry.
func RegisterProgram(progs *cruntime.Programs) {
	progs.Register("vllm/vllm-bench", func() cruntime.Program { return &ContainerProgram{} })
}

var _ cruntime.Program = (*ContainerProgram)(nil)
