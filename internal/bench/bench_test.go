package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

func hopsEngine(t *testing.T, se *sim.Engine) *vllm.Engine {
	t.Helper()
	e, err := vllm.New(se, vllm.Config{
		Model: llm.Scout, GPU: hw.H100SXM, TensorParallel: 4, MaxModelLen: 65536,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	return e
}

func TestRunBatchOneMatchesPaperAnchor(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	ds := sharegpt.Synthesize(7, 4000)
	var res *Result
	se.Go("bench", func(p *sim.Proc) {
		res = Run(p, &EngineTarget{Engine: e}, Config{
			Name: "hops-c1", Dataset: ds, NumPrompts: 200, MaxConcurrency: 1, Seed: 42,
		})
	})
	se.Run()
	if res.Failed != 0 || res.Completed != 200 {
		t.Fatalf("completed=%d failed=%d", res.Completed, res.Failed)
	}
	// Fig 9 anchor: single-query generation rate ≈ 103 tok/s (±10%).
	if res.OutputThroughput < 92 || res.OutputThroughput > 114 {
		t.Fatalf("batch-1 throughput = %.1f tok/s, want ~103", res.OutputThroughput)
	}
	if res.TTFT.N() == 0 || res.TTFT.Mean() <= 0 {
		t.Fatal("no TTFT samples")
	}
	if res.TPOT.Mean() < 8 || res.TPOT.Mean() > 11 {
		t.Fatalf("TPOT = %.2f ms, want ~9.7", res.TPOT.Mean())
	}
}

func TestRunBatch1024Saturates(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	ds := sharegpt.Synthesize(7, 4000)
	var res *Result
	se.Go("bench", func(p *sim.Proc) {
		res = Run(p, &EngineTarget{Engine: e}, Config{
			Name: "hops-c1024", Dataset: ds, NumPrompts: 1000, MaxConcurrency: 1024, Seed: 42,
		})
	})
	se.Run()
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	// Fig 9 anchor: max throughput ≈ 4313 tok/s (±12%: ramp effects).
	if res.OutputThroughput < 3800 || res.OutputThroughput > 4800 {
		t.Fatalf("batch-1024 throughput = %.0f tok/s, want ~4313", res.OutputThroughput)
	}
	// §3.4.1: 1000 queries at max concurrency ≈ 1 minute.
	if res.Duration < 30*time.Second || res.Duration > 2*time.Minute {
		t.Fatalf("duration = %v, want ≈1 min", res.Duration)
	}
}

func TestBatchOneDurationIsHalfHour(t *testing.T) {
	// §3.4.1: batch 1, 1000 queries ≈ 30 minutes on Hops.
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	ds := sharegpt.Synthesize(7, 4000)
	var res *Result
	se.Go("bench", func(p *sim.Proc) {
		res = Run(p, &EngineTarget{Engine: e}, Config{
			Name: "hops-c1-full", Dataset: ds, NumPrompts: 1000, MaxConcurrency: 1, Seed: 9,
		})
	})
	se.Run()
	if res.Duration < 24*time.Minute || res.Duration > 40*time.Minute {
		t.Fatalf("batch-1 1000-query duration = %v, want ~30 min", res.Duration)
	}
}

func TestHTTPTargetEquivalence(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	net := vhttp.NewNet(netsim.New(se))
	api := &vllm.APIServer{Engine: e}
	if err := net.Listen("hops15", 8000, api, vhttp.ListenOptions{}); err != nil {
		t.Fatal(err)
	}
	ds := sharegpt.Synthesize(7, 2000)
	var res *Result
	se.Go("bench", func(p *sim.Proc) {
		res = Run(p, &HTTPTarget{
			Client:  &vhttp.Client{Net: net, From: "bench-node"},
			BaseURL: "http://hops15:8000",
		}, Config{Name: "http-c8", Dataset: ds, NumPrompts: 100, MaxConcurrency: 8, Seed: 1})
	})
	se.Run()
	if res.Failed != 0 || res.Completed != 100 {
		t.Fatalf("completed=%d failed=%d (%s)", res.Completed, res.Failed, res.CrashMsg)
	}
	if res.OutputThroughput < 400 {
		t.Fatalf("HTTP batch-8 throughput = %.0f tok/s, unreasonably low", res.OutputThroughput)
	}
	if res.TTFT.N() == 0 {
		t.Fatal("TTFT header not propagated through HTTP target")
	}
}

func TestShortPromptRunHasZeroPrefixHits(t *testing.T) {
	// Regression: prompts near the 4-token clamp synthesize less content
	// than the descriptive uniquifier tag, which used to silently no-op —
	// every short prompt was byte-identical and the engine's prefix cache
	// served them, inflating measured throughput. BlockSize 4 so even a
	// ~5-token prompt fills a whole cacheable block (at the default 16 the
	// bug is masked: no block ever fills, and zero hits is trivially true).
	se := sim.NewEngine(1)
	e, err := vllm.New(se, vllm.Config{
		Model: llm.Scout, GPU: hw.H100SXM, TensorParallel: 4, MaxModelLen: 65536,
		BlockSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	net := vhttp.NewNet(netsim.New(se))
	if err := net.Listen("hops15", 8000, &vllm.APIServer{Engine: e}, vhttp.ListenOptions{}); err != nil {
		t.Fatal(err)
	}
	ds := &sharegpt.Dataset{Name: "short", Entries: []sharegpt.Entry{{PromptTokens: 4, OutputTokens: 8}}}
	var res *Result
	se.Go("bench", func(p *sim.Proc) {
		res = Run(p, &HTTPTarget{
			Client:  &vhttp.Client{Net: net, From: "bench-node"},
			BaseURL: "http://hops15:8000",
		}, Config{Name: "short-c4", Dataset: ds, NumPrompts: 50, MaxConcurrency: 4, Seed: 11})
	})
	se.Run()
	if res.Failed != 0 || res.Completed != 50 {
		t.Fatalf("completed=%d failed=%d (%s)", res.Completed, res.Failed, res.CrashMsg)
	}
	st := e.Stats()
	if st.PrefixHits != 0 {
		t.Fatalf("prefix cache hits = %d during a uniquified benchmark run, want 0 (misses=%d)",
			st.PrefixHits, st.PrefixMisses)
	}
	if st.PrefixMisses == 0 {
		t.Fatal("no prefix-cache lookups at all — block size too large for the prompt, test is vacuous")
	}
}

func TestHTTPTargetMalformedTTFTHeaderIsUnknown(t *testing.T) {
	// A garbage X-Request-Ttft-Micros header must record TTFT as unknown
	// (0), not whatever a partial Sscanf left behind.
	se := sim.NewEngine(1)
	net := vhttp.NewNet(netsim.New(se))
	h := vhttp.ServiceFunc(func(p *sim.Proc, req *vhttp.Request) *vhttp.Response {
		body, _ := json.Marshal(vllm.ChatResponse{
			Usage: vllm.Usage{CompletionTokens: 3},
		})
		return &vhttp.Response{
			Status: 200,
			Header: map[string]string{"X-Request-Ttft-Micros": "12garbage"},
			Body:   body,
		}
	})
	if err := net.Listen("fake", 8000, h, vhttp.ListenOptions{}); err != nil {
		t.Fatal(err)
	}
	tgt := &HTTPTarget{Client: &vhttp.Client{Net: net, From: "bench-node"}, BaseURL: "http://fake:8000"}
	var out Outcome
	se.Go("one", func(p *sim.Proc) {
		var err error
		out, err = tgt.Do(p, 16, 8)
		if err != nil {
			t.Errorf("Do: %v", err)
		}
	})
	se.Run()
	if out.TTFT != 0 {
		t.Fatalf("TTFT from malformed header = %v, want 0 (unknown)", out.TTFT)
	}
	if out.Generated != 3 {
		t.Fatalf("generated = %d, want 3", out.Generated)
	}
}

func TestSweepShapeMonotoneSaturating(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	ds := sharegpt.Synthesize(7, 4000)
	var results []*Result
	se.Go("bench", func(p *sim.Proc) {
		results = Sweep(p, &EngineTarget{Engine: e}, Config{
			Name: "hops", Dataset: ds, NumPrompts: 400, Seed: 3,
		}, []int{1, 4, 16, 64})
	})
	se.Run()
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].OutputThroughput <= results[i-1].OutputThroughput {
			t.Fatalf("throughput not increasing: c=%d %.0f ≤ c=%d %.0f",
				results[i].Concurrency, results[i].OutputThroughput,
				results[i-1].Concurrency, results[i-1].OutputThroughput)
		}
	}
	// Diminishing returns: the 16→64 gain ratio is smaller than 1→4.
	gainLow := results[1].OutputThroughput / results[0].OutputThroughput
	gainHigh := results[3].OutputThroughput / results[2].OutputThroughput
	if gainHigh >= gainLow {
		t.Fatalf("no saturation: low gain %.2f, high gain %.2f", gainLow, gainHigh)
	}
}

func TestSweepStopsOnCrash(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	e.SetFaults(vllm.Faults{CrashAfterCompleted: 150})
	ds := sharegpt.Synthesize(7, 1000)
	var results []*Result
	se.Go("bench", func(p *sim.Proc) {
		results = Sweep(p, &EngineTarget{Engine: e}, Config{
			Name: "crashy", Dataset: ds, NumPrompts: 100, Seed: 3,
		}, []int{1, 2, 4, 8})
	})
	se.Run()
	last := results[len(results)-1]
	if !last.Crashed {
		t.Fatal("sweep should end with a crashed run")
	}
	if len(results) >= 4 {
		t.Fatalf("sweep should stop early, got %d points", len(results))
	}
	s := ToSeries("crashy", results)
	found := false
	for _, pt := range s.Points {
		if pt.Note == "crash" {
			found = true
		}
	}
	if !found {
		t.Fatal("crash annotation missing from series")
	}
	if !strings.Contains(last.String(), "RUN ABORTED") {
		t.Fatal("summary missing abort line")
	}
}

// flakyTarget fails every nth request, like a gateway shedding load or a
// replica dying under a request that then exhausts its retry.
type flakyTarget struct {
	inner Target
	n     int
	count int
}

func (f *flakyTarget) Do(p *sim.Proc, prompt, maxNew int) (Outcome, error) {
	f.count++
	if f.count%f.n == 0 {
		return Outcome{}, fmt.Errorf("http 503: all replicas past waiting-queue threshold")
	}
	return f.inner.Do(p, prompt, maxNew)
}

func TestRunContinueOnErrorCountsFailures(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	ds := sharegpt.Synthesize(7, 1000)
	var res *Result
	se.Go("bench", func(p *sim.Proc) {
		res = Run(p, &flakyTarget{inner: &EngineTarget{Engine: e}, n: 10}, Config{
			Name: "flaky", Dataset: ds, NumPrompts: 100, MaxConcurrency: 8, Seed: 3,
			ContinueOnError: true,
		})
	})
	se.Run()
	if res.Crashed {
		t.Fatalf("run aborted despite ContinueOnError: %s", res.CrashMsg)
	}
	if res.Failed != 10 || res.Completed != 90 {
		t.Fatalf("completed=%d failed=%d, want 90/10", res.Completed, res.Failed)
	}
	if res.OutputThroughput <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestWorkersCappedByPrompts(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	ds := sharegpt.Synthesize(7, 100)
	var res *Result
	se.Go("bench", func(p *sim.Proc) {
		res = Run(p, &EngineTarget{Engine: e}, Config{
			Name: "tiny", Dataset: ds, NumPrompts: 5, MaxConcurrency: 1024, Seed: 1,
		})
	})
	se.Run()
	if res.Completed != 5 {
		t.Fatalf("completed = %d, want 5", res.Completed)
	}
}
