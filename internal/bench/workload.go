// Open-loop workload mode: RunWorkload replays an internal/workload request
// stream against a ChatTarget at its recorded arrival times — the load does
// not slow down when the system does, so shed and SLO behavior under
// overload is measured honestly (the closed-loop Run self-throttles by
// construction). Sessions are replayed as real multi-turn conversations:
// turn k+1 carries the full message history of turn k, so session affinity
// and engine prefix caching are exercised with honest token content.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vllm"
	"repro/internal/workload"
)

// ChatJob is one fully-formed conversation turn for a ChatTarget.
type ChatJob struct {
	Model string
	// Session is the affinity key put on the wire (sched.SessionHeader);
	// every turn of one conversation shares it.
	Session string
	// Class is the priority class (sched.PriorityHeader; "" = default).
	Class string
	// Messages is the full history: prior user/assistant turns plus this
	// turn's fresh user message.
	Messages     []vllm.ChatMessage
	MaxNewTokens int
}

// ChatTarget issues fully-formed chat turns. HTTPTarget implements it; the
// scenario harness substitutes fakes.
type ChatTarget interface {
	DoChat(p *sim.Proc, job ChatJob) (Outcome, error)
}

// DoChat implements ChatTarget: the job's model overrides the target
// default, and session/priority ride the scheduling headers.
func (t *HTTPTarget) DoChat(p *sim.Proc, job ChatJob) (Outcome, error) {
	hdr := map[string]string{}
	if job.Session != "" {
		hdr[sched.SessionHeader] = job.Session
	}
	if job.Class != "" {
		hdr[sched.PriorityHeader] = job.Class
	}
	saved := t.Model
	if job.Model != "" {
		t.Model = job.Model
	}
	out, err := t.exchange(p, job.Messages, job.MaxNewTokens, hdr)
	t.Model = saved
	return out, err
}

// CohortResult is one cohort's latency/outcome breakdown.
type CohortResult struct {
	Cohort    string
	Completed int
	Failed    int // non-shed errors
	Shed      int // 503 admission rejections

	InputTokens  int64
	OutputTokens int64

	TTFT metrics.Dist // ms
	ITL  metrics.Dist // ms (streaming targets only)
	E2E  metrics.Dist // ms
}

// WorkloadResult is the open-loop analogue of Result: whole-run totals plus
// the per-cohort breakdown.
type WorkloadResult struct {
	Name      string
	Duration  time.Duration
	Requests  int
	Completed int
	Failed    int
	Shed      int

	OutputTokens     int64
	OutputThroughput float64 // output tok/s

	Cohorts []*CohortResult // sorted by cohort name
}

// Cohort returns the named breakdown (nil if the cohort sent nothing).
func (r *WorkloadResult) Cohort(name string) *CohortResult {
	for _, c := range r.Cohorts {
		if c.Cohort == name {
			return c
		}
	}
	return nil
}

// String renders a per-cohort summary block.
func (r *WorkloadResult) String() string {
	s := fmt.Sprintf("============ Workload Benchmark Result ============\n")
	s += fmt.Sprintf("Run:                   %s\n", r.Name)
	s += fmt.Sprintf("Duration (s):          %.2f\n", r.Duration.Seconds())
	s += fmt.Sprintf("Requests:              %d (completed %d, shed %d, failed %d)\n",
		r.Requests, r.Completed, r.Shed, r.Failed)
	s += fmt.Sprintf("Output tok/s:          %.2f\n", r.OutputThroughput)
	for _, c := range r.Cohorts {
		s += fmt.Sprintf("  cohort %-12s  ok %-6d shed %-5d fail %-4d mean TTFT %.1fms  p99 TTFT %.1fms  mean E2E %.1fms\n",
			c.Cohort, c.Completed, c.Shed, c.Failed, c.TTFT.Mean(), c.TTFT.P99(), c.E2E.Mean())
	}
	s += "===================================================\n"
	return s
}

// sessionState threads one conversation through its turns: the accumulated
// message history and the completion signal of the latest issued turn.
type sessionState struct {
	history []vllm.ChatMessage
	done    *sim.Signal
}

// RunWorkload replays reqs (a workload.Generate stream or a replayed trace)
// open-loop: each request is dispatched at its recorded arrival offset on
// its own process. Turn k+1 of a session additionally waits for turn k's
// completion — its history includes that reply — which is the generator's
// documented earliest-start contract, not closed-loop throttling.
func RunWorkload(p *sim.Proc, target ChatTarget, name string, reqs []workload.Request) *WorkloadResult {
	eng := p.Engine()
	res := &WorkloadResult{Name: name, Requests: len(reqs)}
	byCohort := make(map[string]*CohortResult)
	// Session machinery (history retention, completion chaining) only pays
	// for itself on multi-turn sessions; at 10^5+ single-turn sessions the
	// retained histories would dominate memory for no behavioral difference.
	lastTurn := make(map[string]int)
	for i := range reqs {
		if reqs[i].Turn > 0 {
			if k := reqs[i].SessionKey(); reqs[i].Turn > lastTurn[k] {
				lastTurn[k] = reqs[i].Turn
			}
		}
	}
	sessions := make(map[string]*sessionState, len(lastTurn))
	group := eng.NewGroup()
	start := p.Now()
	var end time.Time

	for i := range reqs {
		r := reqs[i]
		if d := r.At() - p.Now().Sub(start); d > 0 {
			p.Sleep(d)
		}
		cr := byCohort[r.Cohort]
		if cr == nil {
			cr = &CohortResult{Cohort: r.Cohort}
			byCohort[r.Cohort] = cr
		}
		key := r.SessionKey()
		final := r.Turn >= lastTurn[key]
		var ss *sessionState
		var prev, mine *sim.Signal
		if lastTurn[key] > 0 {
			ss = sessions[key]
			if ss == nil {
				ss = &sessionState{}
				sessions[key] = ss
			}
			prev = ss.done
			mine = eng.NewSignal()
			ss.done = mine
		}
		group.Add(1)
		eng.Go(fmt.Sprintf("wl-%s-%d", r.Cohort, i), func(rp *sim.Proc) {
			defer group.Finish()
			if mine != nil {
				defer mine.Fire()
			}
			if prev != nil {
				rp.Wait(prev)
			}
			user := vllm.ChatMessage{Role: "user", Content: turnText(r)}
			var history []vllm.ChatMessage
			if ss != nil {
				history = ss.history
			}
			msgs := make([]vllm.ChatMessage, 0, len(history)+1)
			msgs = append(msgs, history...)
			msgs = append(msgs, user)
			reqStart := rp.Now()
			out, err := target.DoChat(rp, ChatJob{
				Model: r.Model, Session: key, Class: r.Class,
				Messages: msgs, MaxNewTokens: r.OutputTokens,
			})
			end = rp.Now()
			if ss != nil && final {
				delete(sessions, key) // free the chain once the last turn lands
			}
			if err != nil {
				if Shed(err) {
					cr.Shed++
					res.Shed++
				} else {
					cr.Failed++
					res.Failed++
				}
				return
			}
			cr.Completed++
			res.Completed++
			cr.InputTokens += int64(r.PromptTokens)
			gen := out.Generated
			if gen == 0 {
				gen = r.OutputTokens
			}
			cr.OutputTokens += int64(gen)
			res.OutputTokens += int64(gen)
			if out.TTFT > 0 {
				cr.TTFT.AddDuration(out.TTFT)
			}
			for _, gap := range out.ITL {
				cr.ITL.AddDuration(gap)
			}
			cr.E2E.AddDuration(rp.Now().Sub(reqStart))
			// The reply joins the session history, so the next turn's
			// prompt shares this turn's exact prefix — what makes session
			// affinity and prefix caching honestly measurable.
			if ss != nil && !final {
				ss.history = append(ss.history, user,
					vllm.ChatMessage{Role: "assistant", Content: vllm.SynthesizeText(gen)})
			}
		})
	}
	group.WaitAll(p)
	if end.IsZero() {
		end = p.Now()
	}
	res.Duration = end.Sub(start)
	if secs := res.Duration.Seconds(); secs > 0 {
		res.OutputThroughput = float64(res.OutputTokens) / secs
	}
	for _, cr := range byCohort {
		res.Cohorts = append(res.Cohorts, cr)
	}
	sort.Slice(res.Cohorts, func(i, j int) bool { return res.Cohorts[i].Cohort < res.Cohorts[j].Cohort })
	return res
}

// turnText synthesizes a turn's fresh user message at its recorded token
// length, tagged unique per (cohort, session, turn) — sessions must share
// history with themselves only, never with a same-length neighbor.
func turnText(r workload.Request) string {
	content := vllm.SynthesizeText(r.NewTokens)
	tag := fmt.Sprintf("%s s%d t%d ", r.Cohort, r.Session, r.Turn)
	if len(tag) < len(content) {
		return tag + content[len(tag):]
	}
	return tag
}

// WorkloadCohortPoint is one cohort row in the workload artifact.
type WorkloadCohortPoint struct {
	Cohort    string `json:"cohort"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Shed      int    `json:"shed"`

	TTFTMeanMs float64 `json:"ttft_mean_ms"`
	TTFTP99Ms  float64 `json:"ttft_p99_ms"`
	ITLMeanMs  float64 `json:"itl_mean_ms,omitempty"`
	E2EMeanMs  float64 `json:"e2e_mean_ms"`
	E2EP99Ms   float64 `json:"e2e_p99_ms"`
}

// WorkloadArtifact is the machine-readable open-loop record
// (BENCH_workload.json) CI archives per commit.
type WorkloadArtifact struct {
	Label     string                `json:"label"`
	Spec      workload.Spec         `json:"spec"`
	Stats     workload.Stats        `json:"stream"`
	DurationS float64               `json:"duration_s"`
	Requests  int                   `json:"requests"`
	Completed int                   `json:"completed"`
	Failed    int                   `json:"failed"`
	Shed      int                   `json:"shed"`
	OutputTPS float64               `json:"output_throughput_tps"`
	Cohorts   []WorkloadCohortPoint `json:"cohorts"`
}

// NewWorkloadArtifact flattens an open-loop run for the JSON artifact.
func NewWorkloadArtifact(label string, spec workload.Spec, reqs []workload.Request, res *WorkloadResult) *WorkloadArtifact {
	a := &WorkloadArtifact{
		Label: label, Spec: spec, Stats: workload.Summarize(reqs),
		DurationS: res.Duration.Seconds(),
		Requests:  res.Requests, Completed: res.Completed,
		Failed: res.Failed, Shed: res.Shed,
		OutputTPS: res.OutputThroughput,
	}
	for _, c := range res.Cohorts {
		a.Cohorts = append(a.Cohorts, WorkloadCohortPoint{
			Cohort: c.Cohort, Completed: c.Completed, Failed: c.Failed, Shed: c.Shed,
			TTFTMeanMs: c.TTFT.Mean(), TTFTP99Ms: c.TTFT.P99(),
			ITLMeanMs: c.ITL.Mean(),
			E2EMeanMs: c.E2E.Mean(), E2EP99Ms: c.E2E.P99(),
		})
	}
	return a
}

// WriteWorkloadArtifact renders the artifact as indented JSON at path.
func WriteWorkloadArtifact(path string, a *WorkloadArtifact) error {
	body, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode workload artifact: %w", err)
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}

// ResolveWorkload turns the -workload/-trace-file flag pair into a request
// stream. An existing trace file wins and replays exactly as recorded.
// Otherwise arg names a built-in preset or a spec JSON path, every preset
// cohort targets model, and the generated stream is recorded to traceFile
// (when given) so the next run replays it bit-for-bit.
func ResolveWorkload(arg, model, traceFile string) (workload.Spec, []workload.Request, string, error) {
	if traceFile != "" {
		if f, err := os.Open(traceFile); err == nil {
			defer f.Close()
			spec, reqs, rerr := workload.ReadTrace(f)
			if rerr != nil {
				return workload.Spec{}, nil, "", fmt.Errorf("replay %s: %w", traceFile, rerr)
			}
			return spec, reqs, fmt.Sprintf("replayed %d requests from %s", len(reqs), traceFile), nil
		}
	}
	if arg == "" {
		return workload.Spec{}, nil, "", fmt.Errorf("no workload: pass a preset name, a spec JSON path, or an existing -trace-file")
	}
	var spec workload.Spec
	if data, err := os.ReadFile(arg); err == nil {
		if spec, err = workload.ParseSpec(data); err != nil {
			return workload.Spec{}, nil, "", err
		}
	} else {
		var perr error
		if spec, perr = workload.Preset(arg, model); perr != nil {
			return workload.Spec{}, nil, "", perr
		}
	}
	reqs, err := workload.Generate(spec)
	if err != nil {
		return workload.Spec{}, nil, "", err
	}
	src := fmt.Sprintf("generated %d requests from %q", len(reqs), arg)
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return workload.Spec{}, nil, "", err
		}
		if err := workload.WriteTrace(f, spec, reqs); err != nil {
			f.Close()
			return workload.Spec{}, nil, "", err
		}
		if err := f.Close(); err != nil {
			return workload.Spec{}, nil, "", err
		}
		src += ", recorded to " + traceFile
	}
	return spec, reqs, src, nil
}
