package bench

import (
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/vhttp"
	"repro/internal/vllm"
	"repro/internal/workload"
)

func chatSpec(model string) workload.Spec {
	return workload.Spec{
		Name: "bench-wl",
		Seed: 5,
		Cohorts: []workload.Cohort{
			{Name: "chat", Model: model, Class: "interactive", Weight: 2,
				Clients: 20, Turns: 3, ThinkTime: 5 * time.Second,
				Prompt: workload.LengthDist{Mu: 3.5, Sigma: 0.4},
				Output: workload.LengthDist{Mu: 3.5, Sigma: 0.4}},
			{Name: "api", Model: model, Clients: 30,
				Prompt: workload.LengthDist{Mu: 4.0, Sigma: 0.4},
				Output: workload.LengthDist{Mu: 3.0, Sigma: 0.4}},
		},
		Arrivals: workload.Arrivals{Periods: []workload.RatePeriod{
			{Dur: 30 * time.Second, StartsPerSec: 1},
			{Dur: 30 * time.Second, StartsPerSec: 3},
		}},
	}
}

func TestRunWorkloadOpenLoopAgainstEngine(t *testing.T) {
	se := sim.NewEngine(1)
	e := hopsEngine(t, se)
	net := vhttp.NewNet(netsim.New(se))
	if err := net.Listen("hops15", 8000, &vllm.APIServer{Engine: e}, vhttp.ListenOptions{}); err != nil {
		t.Fatal(err)
	}
	spec := chatSpec(llm.Scout.Name)
	reqs, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var res *WorkloadResult
	se.Go("wl", func(p *sim.Proc) {
		res = RunWorkload(p, &HTTPTarget{
			Client:  &vhttp.Client{Net: net, From: "bench-node"},
			BaseURL: "http://hops15:8000",
		}, "wl", reqs)
	})
	se.Run()
	if res.Failed != 0 || res.Shed != 0 {
		t.Fatalf("failed=%d shed=%d: %s", res.Failed, res.Shed, res)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Completed, len(reqs))
	}
	// Per-cohort breakdowns exist and partition the run.
	chat, api := res.Cohort("chat"), res.Cohort("api")
	if chat == nil || api == nil {
		t.Fatalf("missing cohort breakdown: %+v", res.Cohorts)
	}
	if chat.Completed+api.Completed != res.Completed {
		t.Fatalf("cohorts don't partition: %d + %d != %d", chat.Completed, api.Completed, res.Completed)
	}
	if chat.TTFT.N() == 0 || api.TTFT.N() == 0 || chat.E2E.N() == 0 {
		t.Fatal("missing latency samples in cohort breakdown")
	}
	// Open loop: the run spans at least the arrival schedule (the driver
	// paces on recorded offsets, not completions).
	if res.Duration < 55*time.Second {
		t.Fatalf("duration %v shorter than the arrival schedule", res.Duration)
	}
	// Multi-turn sessions replay real growing histories through one
	// replica, so the engine's prefix cache must see hits on turns 2/3.
	if st := e.Stats(); st.PrefixHits == 0 {
		t.Fatalf("no prefix hits from sessionful replay (misses=%d)", st.PrefixMisses)
	}
}

// shedTarget sheds every nth turn with a 503 like gateway admission
// control, and fails outright every mth.
type shedTarget struct {
	n, m  int
	count int
}

func (s *shedTarget) DoChat(p *sim.Proc, job ChatJob) (Outcome, error) {
	s.count++
	if s.count%s.n == 0 {
		return Outcome{}, &StatusError{Code: 503}
	}
	if s.count%s.m == 0 {
		return Outcome{}, &StatusError{Code: 500, Msg: "replica died"}
	}
	p.Sleep(10 * time.Millisecond)
	return Outcome{Generated: job.MaxNewTokens, TTFT: 5 * time.Millisecond}, nil
}

func TestRunWorkloadClassifiesShedsSeparately(t *testing.T) {
	se := sim.NewEngine(1)
	spec := chatSpec(llm.Scout.Name)
	reqs, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &shedTarget{n: 5, m: 7}
	var res *WorkloadResult
	se.Go("wl", func(p *sim.Proc) { res = RunWorkload(p, tgt, "shed", reqs) })
	se.Run()
	if res.Shed == 0 || res.Failed == 0 {
		t.Fatalf("shed=%d failed=%d, want both nonzero", res.Shed, res.Failed)
	}
	if res.Completed+res.Shed+res.Failed != len(reqs) {
		t.Fatalf("outcomes don't partition: %d+%d+%d != %d", res.Completed, res.Shed, res.Failed, len(reqs))
	}
	var shedSum int
	for _, c := range res.Cohorts {
		shedSum += c.Shed
	}
	if shedSum != res.Shed {
		t.Fatalf("cohort sheds sum %d != total %d", shedSum, res.Shed)
	}
	art := NewWorkloadArtifact("test", spec, reqs, res)
	if art.Shed != res.Shed || len(art.Cohorts) != 2 {
		t.Fatalf("artifact = %+v", art)
	}
	if art.Stats.Requests != len(reqs) {
		t.Fatalf("artifact stream stats = %+v", art.Stats)
	}
}
