// Package bench reimplements vLLM's benchmark_serving.py methodology (§3.4):
// a stream of dataset-sampled requests held at a maximum request concurrency,
// measuring output-token throughput and latency distributions. A sweep over
// concurrencies 1..1024 in powers of two regenerates the paper's figures.
package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

// Outcome describes one completed request.
type Outcome struct {
	Generated int           // output tokens produced
	TTFT      time.Duration // time to first token (0 if unknown)
	// ITL holds the inter-token gaps observed by a streaming client (nil
	// for buffered targets, which see the whole body at once).
	ITL []time.Duration
}

// Target abstracts where requests go: directly into an engine, or over the
// (virtual) network through the OpenAI API like the real benchmark container.
type Target interface {
	// Do issues one request and blocks until completion.
	Do(p *sim.Proc, promptTokens, maxNewTokens int) (Outcome, error)
}

// EngineTarget drives a vllm.Engine in-process.
type EngineTarget struct{ Engine *vllm.Engine }

// Do implements Target.
func (t *EngineTarget) Do(p *sim.Proc, prompt, maxNew int) (Outcome, error) {
	r := t.Engine.Submit(prompt, maxNew)
	p.Wait(r.Done())
	return Outcome{Generated: r.Generated, TTFT: r.TTFT()}, r.Err
}

// HTTPTarget sends OpenAI chat completions to a base URL, as the
// containerized benchmark does (Fig 8).
type HTTPTarget struct {
	Client  *vhttp.Client
	BaseURL string // e.g. "http://hops15:8000"
	Model   string
	APIKey  string
	// Stream requests SSE delivery (`stream: true`) and measures TTFT at
	// the first delta's arrival — the client-observed number, not the
	// server-reported header — plus per-gap inter-token latencies.
	Stream bool

	seq int // per-target request counter making every prompt unique
}

// StatusError is a non-200 HTTP outcome, keeping the status code typed so
// callers can tell load shedding (503 from admission control) from other
// failures.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("http %d", e.Code)
	}
	return fmt.Sprintf("http %d: %s", e.Code, e.Msg)
}

// Shed reports whether err is an admission-control rejection.
func Shed(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == 503
}

// Do implements Target.
func (t *HTTPTarget) Do(p *sim.Proc, prompt, maxNew int) (Outcome, error) {
	content := vllm.SynthesizeText(max(prompt-4, 1))
	// Tag each prompt unique: throughput benchmarks measure prefill+decode
	// compute, and two same-length synthesized prompts would otherwise be
	// identical and served from the engine's prefix cache — real harnesses
	// randomize prompts for exactly this reason. Entries near the 4-token
	// clamp synthesize less content than the descriptive tag; those fall
	// back to a compact base-36 tag, and when even that does not fit the
	// tag *is* the content (padding the prompt by a token at most) — no two
	// benchmark prompts are ever byte-identical.
	t.seq++
	tag := fmt.Sprintf("benchmark request %d ", t.seq)
	if len(tag) > len(content) {
		tag = strconv.FormatInt(int64(t.seq), 36) + " "
	}
	if len(tag) < len(content) {
		content = tag + content[len(tag):]
	} else {
		content = tag
	}
	return t.exchange(p, []vllm.ChatMessage{{Role: "user", Content: content}}, maxNew, nil)
}

// exchange performs one chat completion with the given message list,
// shared by the closed-loop Do and the open-loop workload DoChat.
func (t *HTTPTarget) exchange(p *sim.Proc, msgs []vllm.ChatMessage, maxNew int, extraHeader map[string]string) (Outcome, error) {
	body, _ := json.Marshal(vllm.ChatRequest{
		Model:     t.Model,
		Messages:  msgs,
		MaxTokens: maxNew,
		Stream:    t.Stream,
	})
	req := &vhttp.Request{
		Method: "POST",
		URL:    strings.TrimSuffix(t.BaseURL, "/") + "/v1/chat/completions",
		Header: map[string]string{"Content-Type": "application/json"},
		Body:   body,
	}
	if t.APIKey != "" {
		req.Header["Authorization"] = "Bearer " + t.APIKey
	}
	for k, v := range extraHeader {
		req.Header[k] = v
	}
	start := p.Now()
	resp, err := t.Client.Do(p, req)
	if err != nil {
		return Outcome{}, err
	}
	if resp.Status != 200 {
		se := &StatusError{Code: resp.Status}
		var er vllm.ErrorResponse
		if json.Unmarshal(resp.Body, &er) == nil && er.Error.Message != "" {
			se.Msg = er.Error.Message
		}
		return Outcome{}, se
	}
	if resp.Stream != nil {
		return t.consumeStream(p, resp.Stream, start)
	}
	if t.Stream {
		return Outcome{}, fmt.Errorf("requested stream=true but got a buffered response")
	}
	var cr vllm.ChatResponse
	if err := json.Unmarshal(resp.Body, &cr); err != nil {
		return Outcome{}, fmt.Errorf("bad response: %w", err)
	}
	var ttft time.Duration
	if v := resp.Header["X-Request-Ttft-Micros"]; v != "" {
		// A malformed header records TTFT as unknown (0); Sscanf would
		// otherwise leave whatever garbage a partial scan produced.
		if us, perr := strconv.ParseInt(strings.TrimSpace(v), 10, 64); perr == nil && us > 0 {
			ttft = time.Duration(us) * time.Microsecond
		}
	}
	return Outcome{Generated: cr.Usage.CompletionTokens, TTFT: ttft}, nil
}

// consumeStream pulls SSE chunks as the engine produces them, timing the
// first content delta (TTFT as a client would see it) and every gap
// between deltas. A truncated stream — the backend died after the first
// byte, which the gateway deliberately does not retry — fails the request.
func (t *HTTPTarget) consumeStream(p *sim.Proc, stream vhttp.ChunkReader, start time.Time) (Outcome, error) {
	var out Outcome
	tokens := 0
	last := start
	for {
		c, ok := stream.Next(p)
		if !ok {
			break
		}
		payload, isEvent := vllm.ParseSSE(c.Data)
		if !isEvent || string(payload) == "[DONE]" {
			continue
		}
		var chunk vllm.ChatChunk
		if json.Unmarshal(payload, &chunk) != nil {
			continue
		}
		if chunk.Usage != nil {
			out.Generated = chunk.Usage.CompletionTokens
		}
		if len(chunk.Choices) > 0 && chunk.Choices[0].Delta.Content != "" {
			now := p.Now()
			if tokens == 0 {
				out.TTFT = now.Sub(start)
			} else {
				out.ITL = append(out.ITL, now.Sub(last))
			}
			last = now
			tokens++
		}
	}
	if err := stream.Err(); err != nil {
		return Outcome{}, fmt.Errorf("stream truncated after %d tokens: %w", tokens, err)
	}
	if out.Generated == 0 {
		out.Generated = tokens
	}
	return out, nil
}

// Config parameterizes one benchmark run.
type Config struct {
	Name           string
	Dataset        *sharegpt.Dataset
	NumPrompts     int // default 1000
	MaxConcurrency int // the swept variable
	Seed           int64
	// ContinueOnError keeps the run going when individual requests fail,
	// counting them instead of aborting. Used when benchmarking through the
	// replica gateway, where a replica crash surfaces as sporadic request
	// errors the gateway absorbs rather than a dead endpoint.
	ContinueOnError bool
}

// Result mirrors benchmark_serving.py's summary block.
type Result struct {
	Name        string
	Concurrency int

	Duration  time.Duration
	Completed int
	Failed    int

	InputTokens  int64
	OutputTokens int64

	RequestThroughput float64 // req/s
	OutputThroughput  float64 // output tok/s
	TotalThroughput   float64 // (in+out) tok/s

	TTFT metrics.Dist // ms
	TPOT metrics.Dist // ms (per output token after the first)
	ITL  metrics.Dist // ms (client-observed inter-token gaps; streaming only)
	E2E  metrics.Dist // ms

	Crashed  bool
	CrashMsg string
}

// String renders the benchmark_serving-style summary block.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "============ Serving Benchmark Result ============\n")
	fmt.Fprintf(&b, "Run:                              %s\n", r.Name)
	fmt.Fprintf(&b, "Max request concurrency:          %d\n", r.Concurrency)
	fmt.Fprintf(&b, "Successful requests:              %d\n", r.Completed)
	fmt.Fprintf(&b, "Failed requests:                  %d\n", r.Failed)
	fmt.Fprintf(&b, "Benchmark duration (s):           %.2f\n", r.Duration.Seconds())
	fmt.Fprintf(&b, "Total input tokens:               %d\n", r.InputTokens)
	fmt.Fprintf(&b, "Total generated tokens:           %d\n", r.OutputTokens)
	fmt.Fprintf(&b, "Request throughput (req/s):       %.2f\n", r.RequestThroughput)
	fmt.Fprintf(&b, "Output token throughput (tok/s):  %.2f\n", r.OutputThroughput)
	fmt.Fprintf(&b, "Total token throughput (tok/s):   %.2f\n", r.TotalThroughput)
	fmt.Fprintf(&b, "Mean TTFT (ms):                   %.2f\n", r.TTFT.Mean())
	fmt.Fprintf(&b, "Median TTFT (ms):                 %.2f\n", r.TTFT.Median())
	fmt.Fprintf(&b, "P99 TTFT (ms):                    %.2f\n", r.TTFT.P99())
	fmt.Fprintf(&b, "Mean TPOT (ms):                   %.2f\n", r.TPOT.Mean())
	if r.ITL.N() > 0 {
		fmt.Fprintf(&b, "Mean ITL (ms):                    %.2f\n", r.ITL.Mean())
		fmt.Fprintf(&b, "P99 ITL (ms):                     %.2f\n", r.ITL.P99())
	}
	fmt.Fprintf(&b, "Mean E2EL (ms):                   %.2f\n", r.E2E.Mean())
	if r.Crashed {
		fmt.Fprintf(&b, "!! RUN ABORTED: %s\n", r.CrashMsg)
	}
	fmt.Fprintf(&b, "==================================================\n")
	return b.String()
}

// Run executes one benchmark: NumPrompts requests drawn from the dataset,
// issued by MaxConcurrency closed-loop workers. It must be called from a
// process. On target failure (server crash) the run aborts and the partial
// result is marked Crashed, mirroring the paper's Fig 12 run 1.
func Run(p *sim.Proc, target Target, cfg Config) *Result {
	if cfg.NumPrompts <= 0 {
		cfg.NumPrompts = 1000
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	entries := cfg.Dataset.Sample(rng, cfg.NumPrompts)

	res := &Result{Name: cfg.Name, Concurrency: cfg.MaxConcurrency}
	eng := p.Engine()
	start := p.Now()
	var end time.Time

	next := 0
	aborted := false
	group := eng.NewGroup()
	workers := cfg.MaxConcurrency
	if workers > cfg.NumPrompts {
		workers = cfg.NumPrompts
	}
	for w := 0; w < workers; w++ {
		group.Add(1)
		eng.Go(fmt.Sprintf("bench-worker-%d", w), func(wp *sim.Proc) {
			defer group.Finish()
			for {
				if aborted || next >= len(entries) {
					return
				}
				e := entries[next]
				next++
				reqStart := wp.Now()
				out, err := target.Do(wp, e.PromptTokens, e.OutputTokens)
				if err != nil {
					res.Failed++
					if cfg.ContinueOnError {
						end = wp.Now()
						continue
					}
					if !aborted {
						aborted = true
						res.Crashed = true
						res.CrashMsg = err.Error()
					}
					return
				}
				res.Completed++
				res.InputTokens += int64(e.PromptTokens)
				res.OutputTokens += int64(out.Generated)
				if out.TTFT > 0 {
					res.TTFT.AddDuration(out.TTFT)
				}
				for _, gap := range out.ITL {
					res.ITL.AddDuration(gap)
				}
				lat := wp.Now().Sub(reqStart)
				res.E2E.AddDuration(lat)
				if out.Generated > 1 && out.TTFT > 0 {
					res.TPOT.Add(float64(lat-out.TTFT) / float64(time.Millisecond) / float64(out.Generated-1))
				}
				end = wp.Now()
			}
		})
	}
	group.WaitAll(p)
	if end.IsZero() {
		end = p.Now()
	}
	res.Duration = end.Sub(start)
	if secs := res.Duration.Seconds(); secs > 0 {
		res.RequestThroughput = float64(res.Completed) / secs
		res.OutputThroughput = float64(res.OutputTokens) / secs
		res.TotalThroughput = float64(res.InputTokens+res.OutputTokens) / secs
	}
	return res
}

// SweepConcurrencies is the paper's x-axis: powers of two from 1 to 1024.
func SweepConcurrencies() []int {
	var out []int
	for c := 1; c <= 1024; c *= 2 {
		out = append(out, c)
	}
	return out
}

// Sweep runs the benchmark across concurrencies against one target,
// returning one Result per point. It stops early if a run crashes (the
// server is gone), recording the partial point like the paper's figures.
func Sweep(p *sim.Proc, target Target, base Config, concurrencies []int) []*Result {
	var out []*Result
	for _, c := range concurrencies {
		cfg := base
		cfg.MaxConcurrency = c
		cfg.Name = fmt.Sprintf("%s-c%d", base.Name, c)
		// benchmark_serving.py samples with a fixed seed, so every
		// concurrency point replays the same request set.
		r := Run(p, target, cfg)
		out = append(out, r)
		if r.Crashed {
			break
		}
	}
	return out
}

// ToSeries converts sweep results into a plot series (x = concurrency,
// y = output token throughput), annotating crashes.
func ToSeries(name string, results []*Result) metrics.Series {
	s := metrics.Series{Name: name}
	for _, r := range results {
		note := ""
		if r.Crashed {
			note = "crash"
		}
		s.Add(float64(r.Concurrency), r.OutputThroughput, note)
	}
	return s
}
