package sharegpt

import (
	"math/rand"
	"testing"
)

func TestSynthesizeMoments(t *testing.T) {
	d := Synthesize(1, 20000)
	p, o := d.Means()
	// benchmark_serving's filtered ShareGPT averages ~220 prompt / ~190
	// output tokens; the synthetic corpus must land nearby.
	if p < 190 || p > 250 {
		t.Fatalf("mean prompt = %.1f, want ~220", p)
	}
	if o < 160 || o > 220 {
		t.Fatalf("mean output = %.1f, want ~190", o)
	}
	for _, e := range d.Entries {
		if e.PromptTokens < 4 || e.PromptTokens > 2048 || e.OutputTokens < 4 || e.OutputTokens > 2048 {
			t.Fatalf("entry out of clamp range: %+v", e)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(42, 100)
	b := Synthesize(42, 100)
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := Synthesize(43, 100)
	same := true
	for i := range a.Entries {
		if a.Entries[i] != c.Entries[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSampleWithReplacement(t *testing.T) {
	d := Synthesize(1, 50)
	rng := rand.New(rand.NewSource(7))
	s := d.Sample(rng, 500)
	if len(s) != 500 {
		t.Fatalf("sample size = %d", len(s))
	}
}

func TestSampleEmptyDataset(t *testing.T) {
	// Synthesize(seed, 0) is a legal (empty) dataset; sampling from it must
	// yield an empty slice, not panic in rng.Intn(0).
	d := Synthesize(1, 0)
	rng := rand.New(rand.NewSource(7))
	if got := d.Sample(rng, 10); got != nil {
		t.Fatalf("empty dataset sample = %v, want nil", got)
	}
	if got := Synthesize(1, 5).Sample(rng, 0); got != nil {
		t.Fatalf("zero-count sample = %v, want nil", got)
	}
	p, o := d.Means()
	if p != 0 || o != 0 {
		t.Fatalf("empty dataset means = %.1f/%.1f, want 0/0", p, o)
	}
}

func TestLoadJSON(t *testing.T) {
	data := []byte(`[
	  {"id":"c1","conversations":[
	    {"from":"human","value":"` + makeString(400) + `"},
	    {"from":"gpt","value":"` + makeString(800) + `"},
	    {"from":"human","value":"tiny"},
	    {"from":"gpt","value":"` + makeString(100) + `"}
	  ]},
	  {"id":"c2","conversations":[
	    {"from":"gpt","value":"orphan assistant turn"},
	    {"from":"human","value":"` + makeString(40) + `"},
	    {"from":"gpt","value":"` + makeString(60) + `"}
	  ]}
	]`)
	d, err := LoadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (400,800) ok; ("tiny"=1 token → filtered); (40,60) ok.
	if len(d.Entries) != 2 {
		t.Fatalf("entries = %d, want 2: %+v", len(d.Entries), d.Entries)
	}
	if d.Entries[0].PromptTokens != 100 || d.Entries[0].OutputTokens != 200 {
		t.Fatalf("entry 0 = %+v", d.Entries[0])
	}
	if _, err := LoadJSON([]byte(`not json`)); err == nil {
		t.Fatal("bad JSON should error")
	}
	if _, err := LoadJSON([]byte(`[]`)); err == nil {
		t.Fatal("empty corpus should error")
	}
}

func makeString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'a'
	}
	return string(b)
}
