// Package sharegpt supplies the benchmark workload of §3.4: sampled
// real-world conversation requests in the shape of the ShareGPT_V3 dataset.
//
// Since the actual dataset cannot ship with the repository, Synthesize
// generates a statistically equivalent corpus — log-normal prompt and
// response token lengths whose moments match the public dataset after
// vLLM benchmark_serving's filtering (mean prompt ≈ 220 tokens, mean output
// ≈ 190 tokens, both clamped to [4, 2048]). LoadJSON additionally parses the
// real file format for sites that have it.
package sharegpt

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// Entry is one benchmark request: prompt length and target output length in
// tokens (benchmark_serving uses the dataset's recorded response length as
// the generation budget).
type Entry struct {
	PromptTokens int
	OutputTokens int
}

// Dataset is an ordered pool of entries to sample from.
type Dataset struct {
	Name    string
	Entries []Entry
}

// Log-normal parameters calibrated so post-clamp means land at ~220 prompt /
// ~190 output tokens (see TestSynthesizeMoments). Exported so workload
// cohorts can reuse the calibration as their default length distributions.
const (
	PromptMu    = 5.07
	PromptSigma = 0.80
	OutputMu    = 4.89
	OutputSigma = 0.85
	MinTokens   = 4
	MaxTokens   = 2048
)

// Clamp bounds a sampled token length to the dataset's [MinTokens, MaxTokens]
// window, exactly as benchmark_serving's filtering does.
func Clamp(v float64) int {
	n := int(v)
	if n < MinTokens {
		return MinTokens
	}
	if n > MaxTokens {
		return MaxTokens
	}
	return n
}

// Synthesize builds a deterministic synthetic dataset of n entries.
func Synthesize(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: fmt.Sprintf("sharegpt-synthetic-%d", seed)}
	for i := 0; i < n; i++ {
		p := math.Exp(PromptMu + PromptSigma*rng.NormFloat64())
		o := math.Exp(OutputMu + OutputSigma*rng.NormFloat64())
		d.Entries = append(d.Entries, Entry{PromptTokens: Clamp(p), OutputTokens: Clamp(o)})
	}
	return d
}

// Sample draws n entries (with replacement) using rng, matching
// benchmark_serving's random sampling of the corpus. An empty dataset
// (Synthesize(seed, 0), or a filtered-out corpus) yields an empty slice
// rather than panicking in rng.Intn(0).
func (d *Dataset) Sample(rng *rand.Rand, n int) []Entry {
	if len(d.Entries) == 0 || n <= 0 {
		return nil
	}
	out := make([]Entry, n)
	for i := range out {
		out[i] = d.Entries[rng.Intn(len(d.Entries))]
	}
	return out
}

// Means returns the average prompt and output lengths.
func (d *Dataset) Means() (prompt, output float64) {
	if len(d.Entries) == 0 {
		return 0, 0
	}
	var ps, os float64
	for _, e := range d.Entries {
		ps += float64(e.PromptTokens)
		os += float64(e.OutputTokens)
	}
	n := float64(len(d.Entries))
	return ps / n, os / n
}

// conversation mirrors the ShareGPT_V3_unfiltered_cleaned_split.json schema.
type conversation struct {
	ID            string `json:"id"`
	Conversations []struct {
		From  string `json:"from"`
		Value string `json:"value"`
	} `json:"conversations"`
}

// LoadJSON parses the real ShareGPT file format, pairing each human turn
// with the following gpt turn and estimating tokens at 4 chars/token,
// filtering out degenerate pairs exactly as benchmark_serving does.
func LoadJSON(data []byte) (*Dataset, error) {
	var convs []conversation
	if err := json.Unmarshal(data, &convs); err != nil {
		return nil, fmt.Errorf("sharegpt: bad JSON: %w", err)
	}
	d := &Dataset{Name: "sharegpt-json"}
	for _, c := range convs {
		for i := 0; i+1 < len(c.Conversations); i++ {
			if c.Conversations[i].From != "human" || c.Conversations[i+1].From != "gpt" {
				continue
			}
			p := (len(c.Conversations[i].Value) + 3) / 4
			o := (len(c.Conversations[i+1].Value) + 3) / 4
			if p < MinTokens || o < MinTokens || p > MaxTokens || o > MaxTokens {
				continue
			}
			d.Entries = append(d.Entries, Entry{PromptTokens: p, OutputTokens: o})
		}
	}
	if len(d.Entries) == 0 {
		return nil, fmt.Errorf("sharegpt: no usable human/gpt pairs found")
	}
	return d, nil
}
