package autoscale

import "testing"

// joinOrFatal wires a member whose live replica count the test controls.
func joinOrFatal(t *testing.T, pl *Pool, name string, weight, npr, initial int, cur *int) *Member {
	t.Helper()
	m, err := pl.Join(name, weight, npr, initial, func() int { return *cur })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPoolUncontendedGrantsWant(t *testing.T) {
	pl := NewPool(4)
	curA, curB := 1, 1
	a := joinOrFatal(t, pl, "a", 1, 1, 1, &curA)
	b := joinOrFatal(t, pl, "b", 1, 1, 1, &curB)

	// Total demand fits: everyone gets what they ask for.
	if got := a.Grant(1, 2, 2); got != 2 {
		t.Fatalf("a granted %d, want 2", got)
	}
	curA = 2
	if got := b.Grant(1, 2, 2); got != 2 {
		t.Fatalf("b granted %d, want 2", got)
	}
	// Cooldown-held surplus (want > demand) survives while nobody needs
	// the nodes: leftover capacity covers it.
	curB = 2
	if got := a.Grant(2, 2, 1); got != 2 {
		t.Fatalf("idle a with free capacity granted %d, want to keep 2", got)
	}
}

func TestPoolContentionPreemptsIdleSurplus(t *testing.T) {
	// a idles on 2 replicas (cooldown-held: want 2, demand 1); b bursts to
	// demand 3. Capacity 4: b's burst must reclaim a's surplus.
	pl := NewPool(4)
	curA, curB := 2, 2
	a := joinOrFatal(t, pl, "a", 1, 1, 2, &curA)
	b := joinOrFatal(t, pl, "b", 1, 1, 2, &curB)

	// b reports the burst first: entitled 3, but only 4-2=2 nodes are free
	// of a's usage — growth waits for the reclaim.
	if got := b.Grant(2, 3, 3); got != 2 {
		t.Fatalf("b granted %d before a drained, want 2 (bounded by free nodes)", got)
	}
	// a's next tick is capped below what it holds: the preemption.
	if got := a.Grant(2, 2, 1); got != 1 {
		t.Fatalf("idle a granted %d under contention, want 1", got)
	}
	curA = 1
	// With a drained, b's next tick gets the reclaimed node.
	if got := b.Grant(2, 3, 3); got != 3 {
		t.Fatalf("b granted %d after reclaim, want 3", got)
	}
}

func TestPoolWeightsShapeContention(t *testing.T) {
	// Both members demand 3 on a 4-node pool: the weight-2 member is
	// entitled to twice the share.
	pl := NewPool(4)
	curA, curB := 1, 1
	a := joinOrFatal(t, pl, "a", 2, 1, 1, &curA)
	b := joinOrFatal(t, pl, "b", 1, 1, 1, &curB)

	gotA := a.Grant(1, 3, 3)
	gotB := b.Grant(1, 3, 3)
	if gotA != 3 || gotB != 1 {
		t.Fatalf("weighted grants = %d/%d, want 3/1", gotA, gotB)
	}
}

func TestPoolMultiNodeReplicasArbitrateInNodes(t *testing.T) {
	// a's replicas span 2 nodes each; b's span 1. Capacity 6 under equal
	// weights: node-fair, not replica-fair. Grants materialize between
	// ticks (current() rises), as in the live control loops.
	pl := NewPool(6)
	curA, curB := 1, 1
	a := joinOrFatal(t, pl, "a", 1, 2, 1, &curA)
	b := joinOrFatal(t, pl, "b", 1, 1, 1, &curB)

	curA = a.Grant(1, 3, 3) // wants 6 nodes
	curB = b.Grant(1, 4, 4) // wants 4 nodes
	// Re-tick until stable: entitlements from one fill never sum past
	// capacity, so the members converge within a round.
	for i := 0; i < 4; i++ {
		curA = a.Grant(curA, 3, 3)
		curB = b.Grant(curB, 4, 4)
	}
	if curA*2+curB > 6 {
		t.Fatalf("steady state oversubscribes the pool: a=%d (×2 nodes) b=%d", curA, curB)
	}
	if curA < 1 || curB < 1 {
		t.Fatalf("steady state starves a member: a=%d b=%d", curA, curB)
	}
}

func TestPoolGrantNeverExceedsWantOrFreeNodes(t *testing.T) {
	pl := NewPool(8)
	curA, curB := 1, 6
	a := joinOrFatal(t, pl, "a", 1, 1, 1, &curA)
	joinOrFatal(t, pl, "b", 1, 1, 6, &curB)

	// a is entitled to more than it wants: grant caps at want.
	if got := a.Grant(1, 2, 4); got != 2 {
		t.Fatalf("granted %d, want capped at the member's own target 2", got)
	}
	// Growth is bounded by free nodes (8 - b's 6 = 2) even when demand and
	// entitlement are higher.
	if got := a.Grant(1, 4, 4); got > 2 {
		t.Fatalf("granted %d with only 2 free nodes", got)
	}
	// Transient overshoot elsewhere never forces a shrink on a member
	// whose entitlement covers its holdings.
	curB = 8
	if got := a.Grant(1, 1, 1); got != 1 {
		t.Fatalf("granted %d, want to keep 1 despite b's overshoot", got)
	}
}

func TestPoolJoinValidation(t *testing.T) {
	pl := NewPool(4)
	cur := 0
	if _, err := pl.Join("a", 1, 0, 0, func() int { return cur }); err == nil {
		t.Fatal("nodesPerReplica 0 should be rejected")
	}
	joinOrFatal(t, pl, "a", 0, 1, 0, &cur) // weight 0 clamps to 1
	if _, err := pl.Join("a", 1, 1, 0, func() int { return cur }); err == nil {
		t.Fatal("duplicate member name should be rejected")
	}
}

func TestPoolStatusReportsEntitlements(t *testing.T) {
	pl := NewPool(4)
	curA, curB := 2, 1
	a := joinOrFatal(t, pl, "a", 1, 1, 2, &curA)
	b := joinOrFatal(t, pl, "b", 1, 1, 1, &curB)
	a.Grant(2, 2, 1)
	b.Grant(1, 3, 3)

	st := pl.Status()
	if st.CapacityNodes != 4 || st.UsedNodes != 3 || len(st.Members) != 2 {
		t.Fatalf("status = %+v", st)
	}
	byName := map[string]PoolMemberStatus{}
	for _, m := range st.Members {
		byName[m.Name] = m
	}
	if byName["a"].Entitled != 1 || byName["b"].Entitled != 3 {
		t.Fatalf("entitlements = a:%d b:%d, want 1/3 (demand-driven)",
			byName["a"].Entitled, byName["b"].Entitled)
	}
	if byName["a"].Want != 2 || byName["a"].Demand != 1 {
		t.Fatalf("a's reported signals = %+v", byName["a"])
	}
}
