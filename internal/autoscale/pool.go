package autoscale

import "fmt"

// Arbiter grants replica capacity to one autoscaled replica set from a
// shared budget. An Autoscaler with a non-nil Arbiter consults it every
// control-loop tick — even when its own policy would hold steady — so a
// shared pool can preempt idle surplus the moment a competing model needs
// it, without waiting out the member's own scale-down cooldown.
type Arbiter interface {
	// Grant arbitrates one tick: cur is the member's live replica count,
	// want the target its own policy computed (cooldowns applied), and
	// demand the replica count its current load justifies ignoring
	// cooldowns. Returns the target the member may apply; never above want.
	Grant(cur, want, demand int) int
}

// Pool is a finite node budget shared by the replica sets of a multi-model
// fleet. Each member's autoscaler computes its own target as usual; the
// pool caps the sum. Capacity is arbitrated in nodes (a member's replicas
// may each span several nodes) with two rules:
//
//   - Contention is resolved by demand, not by possession: entitlements are
//     a weighted fair share of the capacity bounded by each member's
//     load-justified demand. A member holding replicas its load no longer
//     justifies is granted less than it holds, and its surplus drains
//     gracefully — which is how a burst on model A reclaims idle capacity
//     from model B instead of failing on node exhaustion.
//   - Growth is bounded by nodes actually free right now (capacity minus
//     every other member's live usage), so a reclaim converges over a few
//     ticks as the drained nodes free up. Grants computed against demands
//     another member is about to raise can transiently overlap; the next
//     round of ticks re-fills with current demands and converges, since
//     one fill's entitlements never sum past capacity.
//
// Weights are relative priorities: a weight-2 member is entitled to twice
// the nodes of a weight-1 member under contention. Capacity should cover
// every member's MinReplicas floor; below that, low-weight members can be
// entitled less than their floor.
type Pool struct {
	capacity int
	members  []*Member
}

// NewPool creates a pool arbitrating capacityNodes nodes.
func NewPool(capacityNodes int) *Pool {
	return &Pool{capacity: capacityNodes}
}

// Capacity returns the pool's node budget.
func (pl *Pool) Capacity() int { return pl.capacity }

// Member is one replica set's stake in a Pool. It implements Arbiter for
// that set's Autoscaler.
type Member struct {
	pool *Pool
	name string
	// weight is the member's relative share under contention (min 1).
	weight int
	// nodesPerReplica converts the member's replica counts to node counts.
	nodesPerReplica int
	// current reports the member's live replica count (the deployment's,
	// not the autoscaler's view — drains in progress still hold nodes).
	current func() int

	want   int // last target reported by the member's policy
	demand int // last load-justified demand reported
}

// Join registers a member. nodesPerReplica must be >= 1; weight < 1 is
// treated as 1. initial primes the member's demand so capacity it already
// holds is not reclaimed before its autoscaler's first tick (fixed-size
// members simply never update it).
func (pl *Pool) Join(name string, weight, nodesPerReplica, initial int, current func() int) (*Member, error) {
	if nodesPerReplica < 1 {
		return nil, fmt.Errorf("autoscale: pool member %q needs nodesPerReplica >= 1 (got %d)", name, nodesPerReplica)
	}
	if weight < 1 {
		weight = 1
	}
	for _, m := range pl.members {
		if m.name == name {
			return nil, fmt.Errorf("autoscale: pool member %q already joined", name)
		}
	}
	m := &Member{
		pool: pl, name: name, weight: weight, nodesPerReplica: nodesPerReplica,
		current: current, want: initial, demand: initial,
	}
	pl.members = append(pl.members, m)
	return m, nil
}

// Grant implements Arbiter for this member.
func (m *Member) Grant(cur, want, demand int) int {
	if want < 0 {
		want = 0
	}
	if demand < 0 {
		demand = 0
	}
	m.want, m.demand = want, demand
	entitled := m.pool.fill()[m]
	grant := want
	if entitled < grant {
		grant = entitled
	}
	if grant > cur {
		// Growth is bounded by nodes free right now. A member mid-drain
		// elsewhere still occupies its nodes; the next tick re-grants.
		free := m.pool.capacity
		for _, o := range m.pool.members {
			if o != m {
				free -= o.current() * o.nodesPerReplica
			}
		}
		if afford := free / m.nodesPerReplica; afford < grant {
			grant = afford
		}
		// Never force a shrink on affordability alone: others being
		// transiently over budget must not drain a member whose
		// entitlement covers what it holds.
		if grant < cur {
			grant = cur
		}
	}
	if grant < 0 {
		grant = 0
	}
	return grant
}

// fill computes each member's entitlement (in replicas) by weighted
// round-robin water-filling: first every member up to its load-justified
// demand, then any leftover up to what members want (so cooldown-held
// surplus survives while nobody else needs the nodes). Deterministic:
// ties resolve in registration order.
func (pl *Pool) fill() map[*Member]int {
	alloc := make(map[*Member]int, len(pl.members))
	remaining := pl.capacity
	bounds := []func(*Member) int{
		func(m *Member) int { return m.demand },
		func(m *Member) int {
			if m.want > m.demand {
				return m.want
			}
			return m.demand
		},
	}
	for _, bound := range bounds {
		for remaining > 0 {
			var best *Member
			var bestScore float64
			for _, m := range pl.members {
				if alloc[m] >= bound(m) || m.nodesPerReplica > remaining {
					continue
				}
				score := float64((alloc[m]+1)*m.nodesPerReplica) / float64(m.weight)
				if best == nil || score < bestScore {
					best, bestScore = m, score
				}
			}
			if best == nil {
				break
			}
			alloc[best]++
			remaining -= best.nodesPerReplica
		}
	}
	return alloc
}

// PoolMemberStatus is one member's row in PoolStatus.
type PoolMemberStatus struct {
	Name     string `json:"name"`
	Weight   int    `json:"weight"`
	Replicas int    `json:"replicas"`
	Nodes    int    `json:"nodes"`
	Want     int    `json:"want"`
	Demand   int    `json:"demand"`
	Entitled int    `json:"entitled"`
}

// PoolStatus is the arbiter's observable state.
type PoolStatus struct {
	CapacityNodes int                `json:"capacity_nodes"`
	UsedNodes     int                `json:"used_nodes"`
	Members       []PoolMemberStatus `json:"members"`
}

// Status snapshots the pool: live usage and current entitlements.
func (pl *Pool) Status() PoolStatus {
	st := PoolStatus{CapacityNodes: pl.capacity}
	entitled := pl.fill()
	for _, m := range pl.members {
		cur := m.current()
		nodes := cur * m.nodesPerReplica
		st.UsedNodes += nodes
		st.Members = append(st.Members, PoolMemberStatus{
			Name: m.name, Weight: m.weight, Replicas: cur, Nodes: nodes,
			Want: m.want, Demand: m.demand, Entitled: entitled[m],
		})
	}
	return st
}
