// Package autoscale is the elastic replica controller: a control loop
// (running as a sim.Proc) that watches a replica set's gateway load signals
// — requests held at the gateway, per-replica queue depths scraped from
// vLLM's /metrics, and EWMA-smoothed request rate and p95 latency (read
// from the gateway's log-bucketed latency histogram, the same distribution
// /gateway/metrics exposes) — and
// resizes the deployment between MinReplicas and MaxReplicas, including
// scale-to-zero with cold-start queuing at the gateway.
//
// The shape follows the related work: Chat AI (Doosthosseini et al.) spawns
// and retires Slurm-backed LLM services with demand, and the CSCS Cray EX
// experience paper makes the same case for elastic ML services on
// batch-scheduled machines. An HPC center cannot hold N GPU nodes forever
// for a diurnal chat workload; this controller gives the fixed-size replica
// sets of internal/core their missing elasticity.
package autoscale

import (
	"fmt"
	"time"

	"repro/internal/ingress"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Policy is the user-facing autoscaling contract (DeployConfig.Autoscale).
// Zero-valued knobs take the documented defaults.
type Policy struct {
	// MinReplicas is the floor the set never shrinks below. 0 enables
	// scale-to-zero: after ScaleToZeroAfter of idleness the last replica is
	// drained and released, and the gateway queues cold-start requests.
	MinReplicas int
	// MaxReplicas is the ceiling (required, >= max(MinReplicas, 1)).
	MaxReplicas int
	// TargetQueueDepth is the per-replica demand (gateway in-flight plus
	// scraped waiting/running) the controller sizes the set for (default 8).
	TargetQueueDepth int
	// ScaleUpThreshold is the per-replica load above which the set grows
	// (default: TargetQueueDepth).
	ScaleUpThreshold float64
	// ScaleDownThreshold is the per-replica load below which the set
	// shrinks toward the load's demand (default: TargetQueueDepth/4).
	ScaleDownThreshold float64
	// ScaleUpCooldown is the minimum spacing between scale-ups (default 1m).
	// Cold starts from zero replicas bypass it: a request is waiting.
	ScaleUpCooldown time.Duration
	// ScaleDownCooldown is the minimum spacing between scale-downs
	// (default 5m) — scale up fast, scale down slowly.
	ScaleDownCooldown time.Duration
	// ScaleToZeroAfter is how long the set must be completely idle (no
	// load, no held requests, no new arrivals) before dropping to
	// MinReplicas (default 15m). Only reaches zero when MinReplicas is 0.
	ScaleToZeroAfter time.Duration
	// Interval is the control-loop tick (default 30s).
	Interval time.Duration
	// RateHalflife is the EWMA halflife smoothing the request-rate and
	// p95-latency signals (default 1m).
	RateHalflife time.Duration
	// SLOTargetP95 is the per-model latency objective shared with the
	// gateway's SLO admission breaker. The p95 is read from the gateway's
	// windowed latency histogram (LatencyQuantile) and EWMA-smoothed
	// here. While the smoothed p95 breaches it,
	// the controller raises its demand signal and scales up ahead of the
	// queue-depth path — scale first, shed only if scaling cannot keep up.
	// A continuous-batching engine absorbs load into ever-larger batches,
	// so a replica set can be slow without ever showing a deep waiting
	// queue; the latency tail is the earlier signal. 0 disables.
	SLOTargetP95 time.Duration
}

// WithDefaults returns the policy with zero-valued knobs resolved.
func (pol Policy) WithDefaults() Policy {
	out := pol
	if out.TargetQueueDepth <= 0 {
		out.TargetQueueDepth = 8
	}
	if out.ScaleUpThreshold <= 0 {
		out.ScaleUpThreshold = float64(out.TargetQueueDepth)
	}
	if out.ScaleDownThreshold <= 0 {
		out.ScaleDownThreshold = float64(out.TargetQueueDepth) / 4
	}
	if out.ScaleUpCooldown <= 0 {
		out.ScaleUpCooldown = time.Minute
	}
	if out.ScaleDownCooldown <= 0 {
		out.ScaleDownCooldown = 5 * time.Minute
	}
	if out.ScaleToZeroAfter <= 0 {
		out.ScaleToZeroAfter = 15 * time.Minute
	}
	if out.Interval <= 0 {
		out.Interval = 30 * time.Second
	}
	if out.RateHalflife <= 0 {
		out.RateHalflife = time.Minute
	}
	return out
}

// Validate rejects inconsistent policies (after defaults are applied).
func (pol Policy) Validate() error {
	p := pol.WithDefaults()
	if p.MinReplicas < 0 {
		return fmt.Errorf("autoscale: MinReplicas must be >= 0 (got %d)", p.MinReplicas)
	}
	if p.MaxReplicas < 1 {
		return fmt.Errorf("autoscale: MaxReplicas must be >= 1 (got %d)", p.MaxReplicas)
	}
	if p.MaxReplicas < p.MinReplicas {
		return fmt.Errorf("autoscale: MaxReplicas (%d) must be >= MinReplicas (%d)", p.MaxReplicas, p.MinReplicas)
	}
	if p.ScaleDownThreshold >= p.ScaleUpThreshold {
		return fmt.Errorf("autoscale: ScaleDownThreshold (%g) must be below ScaleUpThreshold (%g)",
			p.ScaleDownThreshold, p.ScaleUpThreshold)
	}
	return nil
}

// Scaler is the deployment surface the controller drives. Implemented by
// core.Deployment for replica sets; tests substitute fakes.
type Scaler interface {
	// CurrentReplicas reports the live instance count.
	CurrentReplicas() int
	// ScaleTo resizes the set to n instances, blocking until new replicas
	// are ready (registered with the gateway) or surplus ones are drained
	// and released. Runs on the controller's process.
	ScaleTo(p *sim.Proc, n int) error
}

// Status is the controller's observable state, rendered into the gateway's
// /gateway/status JSON.
type Status struct {
	Current    int     `json:"current"`
	Target     int     `json:"target"`
	Demand     int     `json:"demand"`
	Load       int     `json:"load"`
	Holding    int     `json:"holding"`
	RatePerSec float64 `json:"rate_per_sec"`
	P95Millis  float64 `json:"p95_ms"`
	Reason     string  `json:"reason"`
	Scaling    bool    `json:"scaling"`
	ScaleUps   int     `json:"scale_ups"`
	ScaleDowns int     `json:"scale_downs"`
	LastError  string  `json:"last_error,omitempty"`
	// SLOBreached reports that the smoothed p95 is past SLOTargetP95 as of
	// the last tick. SLOBreachedAtMax additionally means the set is pinned
	// at MaxReplicas — scaling cannot help, the gateway's admission breaker
	// owns the recovery, and the controller holds its demand signal steady
	// instead of re-raising it every tick. Both flow through the gateway's
	// AutoscaleStatus into telemetry.FleetSnapshot (/observe) so the breach
	// is visible fleet-wide rather than replayed as a scaling decision.
	SLOBreached      bool `json:"slo_breached,omitempty"`
	SLOBreachedAtMax bool `json:"slo_breached_at_max,omitempty"`
}

// Autoscaler watches a Gateway and resizes a Scaler per a Policy.
type Autoscaler struct {
	Gateway *ingress.Gateway
	Scaler  Scaler
	Policy  Policy
	// Name identifies the controller in multi-model fleets (diagnostics
	// and pool-arbitration status). Defaults to the gateway host.
	Name string
	// Arbiter, when non-nil, caps every tick's target against a shared
	// capacity pool (see Pool). The controller reports its load-justified
	// demand alongside the cooldown-shaped target, so the pool can tell
	// idle surplus from needed capacity and preempt only the former.
	Arbiter Arbiter

	pol          Policy // resolved
	status       Status
	rate         metrics.EWMA
	p95          metrics.EWMA
	prevRequests int // gateway request counter at the previous tick
	idleSince    time.Time
	lastUp       time.Time
	lastDown     time.Time
	started      bool
	stopped      bool
}

// Start validates the policy and launches the control loop.
func (a *Autoscaler) Start(eng *sim.Engine) error {
	if a.started {
		return fmt.Errorf("autoscale: controller already started")
	}
	if a.Gateway == nil || a.Scaler == nil {
		return fmt.Errorf("autoscale: Gateway and Scaler are required")
	}
	if err := a.Policy.Validate(); err != nil {
		return err
	}
	if a.Name == "" {
		a.Name = a.Gateway.Host
	}
	a.pol = a.Policy.WithDefaults()
	a.rate.Halflife = a.pol.RateHalflife
	a.p95.Halflife = a.pol.RateHalflife
	a.prevRequests = a.Gateway.Stats().Requests
	a.started = true
	eng.Go("autoscale-"+a.Name, func(p *sim.Proc) {
		for !a.stopped {
			p.Sleep(a.pol.Interval)
			if a.stopped {
				return
			}
			a.tick(p)
		}
	})
	return nil
}

// Stop ends the control loop at its next wakeup.
func (a *Autoscaler) Stop() { a.stopped = true }

// Status returns a snapshot of the controller's last decision.
func (a *Autoscaler) Status() Status { return a.status }

// tick runs one control-loop pass: sample signals, decide, apply.
func (a *Autoscaler) tick(p *sim.Proc) {
	now := p.Now()
	cur := a.Scaler.CurrentReplicas()
	load := a.Gateway.Load()
	holding := a.Gateway.Holding()
	rate := a.rate.Observe(now, a.Gateway.RequestRate(now))
	p95 := a.p95.Observe(now, float64(a.Gateway.LatencyQuantile(now, 0.95))/float64(time.Millisecond))
	// Idleness is judged on exact arrival counts, not the smoothed rate: an
	// EWMA of a windowed rate takes many halflives to decay below any
	// threshold, which would push scale-to-zero far past ScaleToZeroAfter.
	reqs := a.Gateway.Stats().Requests
	newArrivals := reqs - a.prevRequests
	a.prevRequests = reqs

	// The objective counts as breached while the smoothed p95 is past it OR
	// the gateway's admission breaker is actively shedding: shed traffic
	// deflates both the queues and the latency tail, so the raw signals
	// momentarily looking healthy mid-incident is the breaker working, not
	// spare capacity.
	breached := a.sloBreached(p95)
	if st, ok := a.Gateway.SLO(); ok && st.Engaged {
		breached = true
	}

	target, reason := a.desired(now, cur, load, holding, newArrivals, p95, breached)
	demand := a.demand(load, holding, breached)
	if a.Arbiter != nil {
		if granted := a.Arbiter.Grant(cur, target, demand); granted != target {
			reason = fmt.Sprintf("pool arbitration: granted %d of %d (%s)", granted, target, reason)
			target = granted
		}
	}
	a.status.Current, a.status.Target = cur, target
	a.status.Demand = demand
	a.status.Load, a.status.Holding = load, holding
	a.status.RatePerSec, a.status.P95Millis = rate, p95
	a.status.Reason = reason
	a.status.SLOBreached = breached
	a.status.SLOBreachedAtMax = breached && cur >= a.pol.MaxReplicas
	if target == cur {
		return
	}
	a.status.Scaling = true
	err := a.Scaler.ScaleTo(p, target)
	a.status.Scaling = false
	if err != nil {
		a.status.LastError = err.Error()
	} else {
		a.status.LastError = ""
	}
	// Record the direction actually applied, not the one requested: a
	// partially successful scale-up (some replicas came up, one launch
	// failed) must still start the cooldown and post-scale-up
	// stabilization window, or the fresh replicas — whose queues look
	// empty until scraped — would be drained right back down.
	after := a.Scaler.CurrentReplicas()
	if after > cur {
		a.lastUp = p.Now()
		a.status.ScaleUps++
	} else if after < cur {
		a.lastDown = p.Now()
		a.status.ScaleDowns++
	}
	a.status.Current = after
}

// demand is the replica count the current load justifies, ignoring
// cooldowns and stabilization — the pool arbiter's fair-share signal. A
// member coasting on its scale-down cooldown wants its current size but
// demands only what its queues support; the difference is reclaimable. An
// SLO breach raises demand past what the queues show: the pool must not
// reclaim from — and should grant to — a member missing its objective.
// Once the set is pinned at MaxReplicas the breach-bump stops: more
// capacity cannot be used, so re-raising demand every tick only fights the
// gateway's admission breaker for a resolution scaling cannot deliver.
// Instead demand holds steady at the ceiling (breaker-shed traffic
// deflates the queue signal, and the pool must not reclaim mid-incident)
// while the breach itself is surfaced through Status/telemetry.
func (a *Autoscaler) demand(load, holding int, breached bool) int {
	n := ceilDiv(load, a.pol.TargetQueueDepth)
	if n < 1 && (load > 0 || holding > 0) {
		n = 1
	}
	if breached {
		cur := a.Scaler.CurrentReplicas()
		if cur < a.pol.MaxReplicas {
			if n <= cur {
				n = cur + 1
			}
		} else if n < a.pol.MaxReplicas {
			n = a.pol.MaxReplicas
		}
	}
	if n < a.pol.MinReplicas {
		n = a.pol.MinReplicas
	}
	if n > a.pol.MaxReplicas {
		n = a.pol.MaxReplicas
	}
	return n
}

// sloBreached reports whether the smoothed p95 is past the policy's
// latency objective.
func (a *Autoscaler) sloBreached(p95Millis float64) bool {
	return a.pol.SLOTargetP95 > 0 &&
		p95Millis > float64(a.pol.SLOTargetP95)/float64(time.Millisecond)
}

// desired computes the next replica target from the sampled signals.
// breached folds the smoothed p95 and the gateway breaker's engaged state
// together (see tick).
func (a *Autoscaler) desired(now time.Time, cur, load, holding, newArrivals int, p95Millis float64, breached bool) (int, string) {
	pol := a.pol

	idle := load == 0 && holding == 0 && newArrivals == 0
	if idle {
		if a.idleSince.IsZero() {
			a.idleSince = now
		}
	} else {
		a.idleSince = time.Time{}
	}

	// Cold start: demand against zero replicas. Held requests are waiting on
	// this decision, so the scale-up cooldown does not apply.
	if cur == 0 {
		if holding > 0 || !idle {
			demand := load
			if demand < 1 {
				demand = 1
			}
			return a.clamp(ceilDiv(demand, pol.TargetQueueDepth), 1), "cold start: demand with zero replicas"
		}
		return 0, "idle at zero"
	}

	// SLO breach at the ceiling: scaling has nothing left to give, so the
	// gateway's admission breaker owns the recovery. Hold the target steady
	// with a stable reason — re-entering the scale-up/scale-down logic here
	// is what made the controller and the breaker race: shedding deflates
	// load and p95, the controller reads that as reclaimable surplus,
	// shrinks, and re-triggers the very breach the breaker just cleared.
	if breached && cur >= pol.MaxReplicas {
		return cur, fmt.Sprintf("slo breached at max replicas (%d); admission breaker owns recovery", pol.MaxReplicas)
	}

	// SLO breach: the latency tail crosses the objective before the queue
	// depths do (continuous batching hides overload in batch size, not
	// queue length). Grow one replica per cooldown window until the tail
	// recovers or the ceiling is hit — past the ceiling only the gateway's
	// admission breaker is left, which is exactly the intended order:
	// scale first, shed only if scaling cannot keep up.
	if breached && cur < pol.MaxReplicas {
		if !a.lastUp.IsZero() && now.Sub(a.lastUp) < pol.ScaleUpCooldown {
			return cur, "slo breach: scale-up in cooldown"
		}
		// Size for the queues when they justify more (a burst that breaches
		// both signals must not grow slower than the queue path alone
		// would); grow by one even when they do not — shallow queues with a
		// breached tail are continuous batching hiding the overload.
		n := ceilDiv(load, pol.TargetQueueDepth)
		if n <= cur {
			n = cur + 1
		}
		return a.clamp(n, cur), fmt.Sprintf("p95 %.0fms breaches SLO %s; scaling before shedding",
			p95Millis, pol.SLOTargetP95)
	}

	per := float64(load) / float64(cur)

	if per > pol.ScaleUpThreshold && cur < pol.MaxReplicas {
		if !a.lastUp.IsZero() && now.Sub(a.lastUp) < pol.ScaleUpCooldown {
			return cur, "scale-up in cooldown"
		}
		n := ceilDiv(load, pol.TargetQueueDepth)
		if n <= cur {
			n = cur + 1
		}
		return a.clamp(n, cur), fmt.Sprintf("per-replica load %.1f above threshold %.1f", per, pol.ScaleUpThreshold)
	}

	// Scale-to-zero (or to the floor) after sustained idleness.
	if idle && now.Sub(a.idleSince) >= pol.ScaleToZeroAfter && cur > pol.MinReplicas {
		return pol.MinReplicas, fmt.Sprintf("idle for %s", now.Sub(a.idleSince).Round(time.Second))
	}

	// Gradual scale-down toward the load's demand: one replica at a time,
	// only after the set has been stable since the last scale event (a
	// fresh replica's queues look empty until scraped, so reacting to them
	// immediately would flap). Never to zero on this path — zero is
	// reserved for the idle timeout above.
	floor := pol.MinReplicas
	if floor < 1 {
		floor = 1
	}
	// Never shrink while the latency objective is breached (possible at
	// MaxReplicas with shallow queues: the engines are slow, not idle).
	if per < pol.ScaleDownThreshold && cur > floor && !breached {
		if !a.lastDown.IsZero() && now.Sub(a.lastDown) < pol.ScaleDownCooldown {
			return cur, "scale-down in cooldown"
		}
		if !a.lastUp.IsZero() && now.Sub(a.lastUp) < pol.ScaleDownCooldown {
			return cur, "stabilizing after scale-up"
		}
		n := cur - 1
		if want := ceilDiv(load, pol.TargetQueueDepth); n < want {
			n = want
		}
		if n < floor {
			n = floor
		}
		if n >= cur {
			return cur, "steady"
		}
		return n, fmt.Sprintf("per-replica load %.1f below threshold %.1f", per, pol.ScaleDownThreshold)
	}
	return cur, "steady"
}

// clamp bounds n into [max(lo, MinReplicas... as applicable), MaxReplicas].
func (a *Autoscaler) clamp(n, lo int) int {
	if n < lo {
		n = lo
	}
	if n > a.pol.MaxReplicas {
		n = a.pol.MaxReplicas
	}
	return n
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
