package autoscale

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/ingress"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vhttp"
)

// fakeReplica is a controllable backend: health, scraped queue depth, and
// per-request latency.
type fakeReplica struct {
	name    string
	up      bool
	waiting int
	latency time.Duration
	hits    int
}

func (r *fakeReplica) Serve(p *sim.Proc, req *vhttp.Request) *vhttp.Response {
	switch req.Path {
	case "/health":
		if r.up {
			return vhttp.Text(200, "ok")
		}
		return vhttp.Text(500, "unhealthy")
	case telemetry.Path:
		return vhttp.JSON(200, telemetry.Snapshot{Waiting: r.waiting}.Encode())
	}
	if r.latency > 0 {
		p.Sleep(r.latency)
	}
	r.hits++
	return vhttp.Text(200, r.name)
}

// fakeScaler grows and shrinks a pool of fakeReplicas behind the gateway,
// recording every resize. ScaleTo takes simulated time, like a real
// replica launch (cold start) or drain.
type fakeScaler struct {
	net       *vhttp.Net
	gw        *ingress.Gateway
	replicas  []*fakeReplica
	nextID    int
	launchDur time.Duration
	history   []int
	waiting   int           // queue depth reported by every replica
	latency   time.Duration // per-request service time of new replicas
}

func (s *fakeScaler) CurrentReplicas() int { return len(s.replicas) }

func (s *fakeScaler) ScaleTo(p *sim.Proc, n int) error {
	s.history = append(s.history, n)
	for len(s.replicas) < n {
		if s.launchDur > 0 {
			p.Sleep(s.launchDur)
		}
		id := s.nextID
		s.nextID++
		r := &fakeReplica{name: fmt.Sprintf("r%d", id), up: true, waiting: s.waiting, latency: s.latency}
		host := fmt.Sprintf("node%d", id)
		s.net.Listen(host, 8000, r, vhttp.ListenOptions{Up: func() bool { return r.up }})
		s.replicas = append(s.replicas, r)
		s.gw.AddBackend(r.name, host, 8000)
	}
	for len(s.replicas) > n {
		r := s.replicas[len(s.replicas)-1]
		s.replicas = s.replicas[:len(s.replicas)-1]
		if sig := s.gw.RemoveBackend(r.name); sig != nil {
			p.WaitTimeout(sig, time.Minute)
		}
		r.up = false
	}
	return nil
}

func fixture(t *testing.T, pol Policy, initial int) (*sim.Engine, *vhttp.Net, *ingress.Gateway, *fakeScaler, *Autoscaler) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := vhttp.NewNet(netsim.New(eng))
	gw := &ingress.Gateway{Net: net, Host: "gw", Port: 8000, HealthInterval: 10 * time.Second, HoldColdStart: true}
	if err := gw.Start(eng); err != nil {
		t.Fatal(err)
	}
	sc := &fakeScaler{net: net, gw: gw}
	eng.Go("seed", func(p *sim.Proc) { sc.ScaleTo(p, initial) })
	eng.RunFor(time.Second)
	sc.history = nil
	as := &Autoscaler{Gateway: gw, Scaler: sc, Policy: pol}
	if err := as.Start(eng); err != nil {
		t.Fatal(err)
	}
	return eng, net, gw, sc, as
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{MaxReplicas: 4}).Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	for _, bad := range []Policy{
		{MinReplicas: -1, MaxReplicas: 4},
		{MaxReplicas: 0},
		{MinReplicas: 5, MaxReplicas: 2},
		{MaxReplicas: 4, ScaleUpThreshold: 2, ScaleDownThreshold: 3},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("policy %+v should be rejected", bad)
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	pol := Policy{MaxReplicas: 4}.WithDefaults()
	if pol.TargetQueueDepth != 8 || pol.Interval != 30*time.Second {
		t.Fatalf("defaults = %+v", pol)
	}
	if pol.ScaleUpThreshold != 8 || pol.ScaleDownThreshold != 2 {
		t.Fatalf("threshold defaults = %+v", pol)
	}
}

func TestScaleUpOnQueueDepth(t *testing.T) {
	pol := Policy{MinReplicas: 1, MaxReplicas: 4, TargetQueueDepth: 8, Interval: 10 * time.Second}
	eng, _, _, sc, as := fixture(t, pol, 1)
	// The single replica reports a deep queue; the next probe scrapes it
	// and the next tick should size the set for the load: ceil(32/8) = 4.
	sc.replicas[0].waiting = 32
	eng.RunFor(time.Minute)
	if got := sc.CurrentReplicas(); got != 4 {
		t.Fatalf("replicas = %d, want 4 (load 32 / target 8)", got)
	}
	st := as.Status()
	if st.ScaleUps != 1 || st.Current != 4 {
		t.Fatalf("status = %+v", st)
	}
}

func TestScaleUpOnSLOBreachBeforeQueues(t *testing.T) {
	// Slow replicas, shallow queues: the latency objective is breached
	// while per-replica load never crosses the queue-depth threshold, so
	// only the SLO path can grow the set. One replica per cooldown window
	// until the ceiling.
	pol := Policy{MinReplicas: 2, MaxReplicas: 4, TargetQueueDepth: 8,
		Interval: 10 * time.Second, ScaleUpCooldown: 30 * time.Second,
		RateHalflife: 15 * time.Second, SLOTargetP95: time.Second}
	eng, net, _, sc, as := fixture(t, pol, 2)
	sc.latency = 3 * time.Second
	for _, r := range sc.replicas {
		r.latency = 3 * time.Second
	}

	// Open-loop trickle: one request every 2s, each taking 3s — about 1.5
	// in flight across two replicas, far below the queue threshold.
	stop := false
	eng.Go("load", func(p *sim.Proc) {
		c := &vhttp.Client{Net: net, From: "user"}
		for i := 0; !stop; i++ {
			p.Sleep(2 * time.Second)
			eng.Go(fmt.Sprintf("req-%d", i), func(rp *sim.Proc) {
				c.Get(rp, "http://gw:8000/v1/chat/completions")
			})
		}
	})
	eng.RunFor(5 * time.Minute)
	if got := sc.CurrentReplicas(); got != 4 {
		t.Fatalf("replicas = %d, want the SLO path to reach the ceiling 4 (status %+v)", got, as.Status())
	}
	st := as.Status()
	if st.Load >= 8 {
		t.Fatalf("load = %d; the queue-depth path should never have triggered", st.Load)
	}
	if st.Demand < 4 {
		t.Fatalf("demand = %d, want the breach to keep demand at the ceiling", st.Demand)
	}
	// At the ceiling with the objective still breached, the set must not
	// shrink even though per-replica load is under the down threshold.
	eng.RunFor(5 * time.Minute)
	stop = true
	if got := sc.CurrentReplicas(); got != 4 {
		t.Fatalf("replicas after sustained breach = %d, want 4 (no shrink mid-breach)", got)
	}
}

func TestBreachAtMaxHoldsSteadyAndSurfacesViaStatus(t *testing.T) {
	// Pinned at MaxReplicas with the objective breached, the controller
	// must not race the gateway's admission breaker: no resizes, a stable
	// reason, demand held at the ceiling (the pool must not reclaim
	// mid-incident), and the breach surfaced as typed status fields that
	// flow into telemetry.FleetSnapshot.
	pol := Policy{MinReplicas: 1, MaxReplicas: 2, TargetQueueDepth: 8,
		Interval: 10 * time.Second, ScaleDownCooldown: 30 * time.Second,
		RateHalflife: 15 * time.Second, SLOTargetP95: time.Second}
	eng, net, _, sc, as := fixture(t, pol, 2)
	sc.latency = 3 * time.Second
	for _, r := range sc.replicas {
		r.latency = 3 * time.Second
	}
	stop := false
	eng.Go("load", func(p *sim.Proc) {
		c := &vhttp.Client{Net: net, From: "user"}
		for i := 0; !stop; i++ {
			p.Sleep(2 * time.Second)
			eng.Go(fmt.Sprintf("req-%d", i), func(rp *sim.Proc) {
				c.Get(rp, "http://gw:8000/v1/chat/completions")
			})
		}
	})
	eng.RunFor(10 * time.Minute)
	stop = true
	st := as.Status()
	if !st.SLOBreached || !st.SLOBreachedAtMax {
		t.Fatalf("breach not surfaced: %+v", st)
	}
	if st.Demand != 2 {
		t.Fatalf("demand = %d, want held at ceiling 2 mid-incident", st.Demand)
	}
	if !strings.Contains(st.Reason, "admission breaker owns recovery") {
		t.Fatalf("reason = %q, want the stable breach-at-ceiling reason", st.Reason)
	}
	if got := sc.CurrentReplicas(); got != 2 {
		t.Fatalf("replicas = %d, want 2 (no flapping mid-breach)", got)
	}
	// Shallow per-replica load (trickle) plus shed-suppressed p95 used to
	// read as scale-down evidence; the set must not have resized at all.
	if len(sc.history) != 0 {
		t.Fatalf("resize history = %v, want none while pinned at max mid-breach", sc.history)
	}
}

func TestScaleUpCooldownLimitsRate(t *testing.T) {
	pol := Policy{MinReplicas: 1, MaxReplicas: 8, TargetQueueDepth: 4,
		Interval: 10 * time.Second, ScaleUpCooldown: time.Hour}
	eng, _, _, sc, _ := fixture(t, pol, 1)
	sc.waiting = 40 // every replica, including new ones, reports depth 40
	sc.replicas[0].waiting = 40
	eng.RunFor(5 * time.Minute)
	// One scale-up happened; the second is held back by the cooldown even
	// though the queues are still deep.
	if len(sc.history) != 1 {
		t.Fatalf("resize history = %v, want exactly one scale-up inside the cooldown", sc.history)
	}
}

func TestScaleDownTowardFloor(t *testing.T) {
	pol := Policy{MinReplicas: 1, MaxReplicas: 4, TargetQueueDepth: 8,
		Interval: 10 * time.Second, ScaleDownCooldown: time.Minute,
		ScaleToZeroAfter: 24 * time.Hour}
	eng, _, _, sc, _ := fixture(t, pol, 4)
	// No traffic at all: load is 0, so the set steps down to the floor —
	// but never to zero on this path (that needs the idle timeout).
	eng.RunFor(10 * time.Minute)
	if got := sc.CurrentReplicas(); got != 1 {
		t.Fatalf("replicas = %d, want floor 1", got)
	}
}

func TestScaleToZeroAfterIdleAndColdStartRecovery(t *testing.T) {
	pol := Policy{MinReplicas: 0, MaxReplicas: 4, TargetQueueDepth: 8,
		Interval: 10 * time.Second, ScaleDownCooldown: 30 * time.Second,
		ScaleToZeroAfter: 5 * time.Minute, RateHalflife: 30 * time.Second}
	eng, net, gw, sc, as := fixture(t, pol, 2)

	// Idle long enough: the set drains to zero.
	eng.RunFor(30 * time.Minute)
	if got := sc.CurrentReplicas(); got != 0 {
		t.Fatalf("replicas after idle = %d, want 0 (scale-to-zero)", got)
	}
	if st := as.Status(); st.Target != 0 || !strings.Contains(st.Reason, "idle") {
		t.Fatalf("status = %+v", st)
	}

	// A request arrives against zero replicas: held at the gateway, then
	// released when the controller cold-starts a replica. launchDur makes
	// the cold start take real (simulated) time.
	sc.launchDur = 2 * time.Minute
	var status int
	var body string
	eng.Go("user", func(p *sim.Proc) {
		c := &vhttp.Client{Net: net, From: "user"}
		if resp, err := c.Get(p, "http://gw:8000/v1/chat/completions"); err == nil {
			status, body = resp.Status, string(resp.Body)
		}
	})
	eng.RunFor(4 * time.Minute)
	if status != 200 || body == "" {
		t.Fatalf("cold-start request = %d %q, want 200 from the new replica", status, body)
	}
	if got := sc.CurrentReplicas(); got < 1 {
		t.Fatalf("replicas after cold start = %d, want >= 1", got)
	}
	if gw.Stats().Held == 0 {
		t.Fatal("request was never held at the gateway")
	}
	if st := as.Status(); st.ScaleUps < 1 {
		t.Fatalf("status = %+v, want a recorded cold-start scale-up", st)
	}

	// And once that burst is over, the set drains back to zero again.
	eng.RunFor(30 * time.Minute)
	if got := sc.CurrentReplicas(); got != 0 {
		t.Fatalf("replicas after second idle spell = %d, want 0", got)
	}
}

func TestAutoscalerStartValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	as := &Autoscaler{}
	if err := as.Start(eng); err == nil {
		t.Fatal("missing gateway/scaler should fail")
	}
	net := vhttp.NewNet(netsim.New(eng))
	gw := &ingress.Gateway{Net: net, Host: "gw", Port: 8000}
	if err := gw.Start(eng); err != nil {
		t.Fatal(err)
	}
	as = &Autoscaler{Gateway: gw, Scaler: &fakeScaler{net: net, gw: gw}, Policy: Policy{MaxReplicas: 0}}
	if err := as.Start(eng); err == nil {
		t.Fatal("invalid policy should fail Start")
	}
	as.Policy = Policy{MaxReplicas: 2}
	if err := as.Start(eng); err != nil {
		t.Fatal(err)
	}
	if err := as.Start(eng); err == nil {
		t.Fatal("double Start should fail")
	}
	as.Stop()
}
