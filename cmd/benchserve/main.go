// Command benchserve is the standalone serving benchmark (the Fig 8
// workflow): it deploys a model on a simulated platform and sweeps maximum
// request concurrency, printing a benchmark_serving.py-style summary per
// point and a final gnuplot-ready series.
//
//	benchserve -platform hops -model meta-llama/Llama-4-Scout-17B-16E-Instruct -tp 4
//	benchserve -platform eldorado -concurrencies 1,16,256 -num-prompts 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/autoscale"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ingress"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/telemetry"
	"repro/internal/vhttp"
	"repro/internal/workload"
)

func main() {
	var (
		platform = flag.String("platform", "hops", "hops, eldorado, goodall")
		model    = flag.String("model", llm.Scout.Name, "model name")
		tp       = flag.Int("tp", 4, "tensor parallel size")
		pp       = flag.Int("pp", 1, "pipeline parallel size")
		replicas = flag.Int("replicas", 1, "engine instances behind the gateway (>1 = replica set)")
		policy   = flag.String("route-policy", "round-robin", "gateway routing: round-robin, least-loaded, session (KV-cache affinity), prefix (sketch-based cache-aware placement)")
		elastic  = flag.Bool("autoscale", false, "autoscale the replica set from gateway load (HPC platforms)")
		minReps  = flag.Int("min-replicas", 0, "autoscale floor (0 = scale to zero when idle)")
		maxReps  = flag.Int("max-replicas", 4, "autoscale ceiling")
		sloP95   = flag.Duration("slo-p95", 0, "p95 latency objective: shed batch-class requests while the gateway's rolling p95 breaches it (0 = off)")
		ttft     = flag.Duration("ttft-target", 0, "time-to-first-token objective stamped onto requests for the engine's deadline scheduler; batch class gets a relaxed multiple (0 = fall back to -slo-p95)")
		priority = flag.String("priority", "", "default priority class for unlabeled requests: interactive (default) or batch")
		maxLen   = flag.Int("max-model-len", 65536, "context limit")
		prompts  = flag.Int("num-prompts", 1000, "requests per point")
		concs    = flag.String("concurrencies", "", "comma list (default 1..1024 powers of 2)")
		seed     = flag.Int64("seed", 0, "dataset sampling seed")
		fleet    = flag.String("models", "", "multi-model fleet spec alias=hf-name:weight,... — bench each model through one routing endpoint (HPC platforms)")
		pool     = flag.Int("pool-nodes", 0, "shared node pool arbitrated across the fleet's models (0 = no arbitration)")
		prefixOn = flag.Bool("prefix-cache", true, "automatic prefix caching in the engine (vLLM --enable-prefix-caching); bench prompts are unique, so this mainly matters with real multi-turn traffic")
		offload  = flag.Int("cpu-offload-blocks", 0, "host-memory KV tier capacity in blocks per replica (vLLM --cpu-offload-blocks); evicted prefix blocks demote to host memory and re-promote on a hit instead of re-prefilling (0 = off)")
		kvXfer   = flag.Int("kv-transfer-micros", 0, "host-to-GPU KV promotion cost per block in microseconds (0 = engine default)")
		gpuBlk   = flag.Int("gpu-blocks-override", 0, "pin the GPU KV cache to this many blocks (vLLM --num-gpu-blocks-override); small values force eviction to exercise the host tier (0 = profile-derived)")
		stream   = flag.Bool("stream", false, "request SSE streaming (stream: true); TTFT and inter-token latency measured at the client as chunks arrive")
		artifact = flag.String("artifact", "", "write sweep results as a JSON artifact to this path (e.g. BENCH_streaming.json)")
		traceOn  = flag.Bool("trace", false, "sample request traces at the gateway during the sweep and print the slowest trace's stage waterfall (needs -replicas > 1)")
		observe  = flag.String("observe-artifact", "", "write the post-run /observe fleet snapshot as JSON to this path (e.g. OBSERVE_fleet.json)")
		wl       = flag.String("workload", "", "open-loop workload mode: a preset name (diurnal-chat, steady) or a spec JSON path replaces the closed-loop concurrency sweep; -artifact then emits BENCH_workload.json-shaped output")
		wlTrace  = flag.String("trace-file", "", "workload JSONL trace: replayed if the file exists, else the generated stream is recorded here for deterministic replays")
	)
	flag.Parse()

	// Reject bad inputs here rather than deep inside deploy.
	if *replicas < 1 {
		fatal(fmt.Errorf("-replicas must be at least 1 (got %d)", *replicas))
	}
	if _, err := ingress.ParsePolicy(*policy); err != nil {
		fatal(err)
	}
	if _, err := sched.ParseClass(*priority); err != nil {
		fatal(err)
	}
	if *sloP95 < 0 {
		fatal(fmt.Errorf("-slo-p95 must be >= 0 (got %s)", *sloP95))
	}
	if *ttft < 0 {
		fatal(fmt.Errorf("-ttft-target must be >= 0 (got %s)", *ttft))
	}
	var pol *autoscale.Policy
	if *elastic {
		pol = &autoscale.Policy{MinReplicas: *minReps, MaxReplicas: *maxReps}
		if err := pol.Validate(); err != nil {
			fatal(err)
		}
	}

	var points []int
	if *concs == "" {
		points = bench.SweepConcurrencies()
	} else {
		for _, part := range strings.Split(*concs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(err)
			}
			points = append(points, n)
		}
	}
	var pf core.Platform
	switch *platform {
	case "hops":
		pf = core.PlatformHops
	case "eldorado":
		pf = core.PlatformEldorado
	case "goodall":
		pf = core.PlatformGoodall
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
	m, err := llm.ByName(*model)
	if err != nil {
		fatal(err)
	}
	if (*wl != "" || *wlTrace != "") && *fleet != "" {
		fatal(fmt.Errorf("-workload/-trace-file drive a single model's endpoint (drop -models)"))
	}
	var fleetEntries []core.FleetFlagEntry
	if *fleet != "" {
		if pf.Kind == "k8s" {
			fatal(fmt.Errorf("-models benches HPC fleet deployments (got %s)", pf.Name))
		}
		if fleetEntries, err = core.ParseFleetFlag(*fleet); err != nil {
			fatal(err)
		}
	}

	s := site.New(site.Options{Small: true, Seed: *seed + 3})
	d := core.NewDeployer(s)
	var failure error
	done := false
	s.Eng.Go("benchserve", func(p *sim.Proc) {
		defer func() { done = true }()
		if len(fleetEntries) > 0 {
			failure = benchFleet(p, s, d, pf, fleetEntries, benchFleetConfig{
				tp: *tp, maxLen: *maxLen, replicas: *replicas, policy: *policy,
				sloP95: *sloP95, ttft: *ttft, priority: *priority, noPrefixCache: !*prefixOn,
				autoscale: pol, poolNodes: *pool, prompts: *prompts, seed: *seed, points: points,
				stream: *stream, artifact: *artifact, trace: *traceOn, observe: *observe,
			})
			return
		}
		switch pf.Kind {
		case "k8s":
			failure = core.SeedModelToS3(p, d, m)
		default:
			fsys := s.HopsLustre
			if pf.Name == "eldorado" {
				fsys = s.EldoradoLustre
			}
			failure = core.SeedModel(p, fsys, m)
		}
		if failure != nil {
			return
		}
		dp, err := d.Deploy(p, core.VLLMPackage(), pf, core.DeployConfig{
			Model: m, TensorParallel: *tp, PipelineParallel: *pp,
			MaxModelLen: *maxLen, Offline: true,
			Replicas: *replicas, RoutePolicy: *policy, Autoscale: pol,
			SLOTargetP95: *sloP95, TTFTTarget: *ttft, PriorityClass: *priority,
			DisablePrefixCache: !*prefixOn,
			CPUOffloadBlocks:   *offload, KVTransferMicros: *kvXfer,
			NumGPUBlocksOverride: *gpuBlk,
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		if gw := dp.Gateway(); gw != nil {
			fmt.Printf("# serving %s on %s: %d replicas behind %s (%s routing)\n",
				m.Short, pf.Name, len(dp.Replicas()), dp.BaseURL, gw.Policy)
			if *traceOn {
				gw.TraceSampleEvery = traceSampleStride
			}
		} else {
			fmt.Printf("# serving %s on %s at %s\n", m.Short, pf.Name, dp.BaseURL)
			if *traceOn {
				fmt.Println("# -trace needs a gateway (-replicas > 1); no traces will be sampled")
			}
		}
		target := &bench.HTTPTarget{
			Client:  &vhttp.Client{Net: s.Net, From: site.LoginHops},
			BaseURL: dp.BaseURL,
			Stream:  *stream,
		}
		var results []*bench.Result
		var wlSpec workload.Spec
		var wlReqs []workload.Request
		var wlRes *bench.WorkloadResult
		if *wl != "" || *wlTrace != "" {
			// Open-loop workload mode: replay a cohort/diurnal/session stream
			// at recorded arrival times instead of sweeping concurrency.
			var src string
			wlSpec, wlReqs, src, err = bench.ResolveWorkload(*wl, m.Name, *wlTrace)
			if err != nil {
				failure = err
				return
			}
			st := workload.Summarize(wlReqs)
			fmt.Printf("# workload: %s (%d sessions, %d clients, %s span)\n", src, st.Sessions, st.Clients, st.Span)
			wlRes = bench.RunWorkload(p, target, wlSpec.Name, wlReqs)
			fmt.Print(wlRes)
		} else {
			ds := sharegpt.Synthesize(*seed, 4000)
			results = bench.Sweep(p, target, bench.Config{
				Name: *platform, Dataset: ds, NumPrompts: *prompts, Seed: *seed,
				ContinueOnError: dp.Gateway() != nil,
			}, points)
			for _, r := range results {
				fmt.Println(r)
			}
		}
		if gw := dp.Gateway(); gw != nil {
			st := gw.Stats()
			fmt.Printf("# gateway: %d requests, %d retries, %d rejected, %d errors; %d/%d replicas healthy\n",
				st.Requests, st.Retries, st.Rejected, st.Errors, gw.HealthyBackends(), len(gw.Backends()))
			if slo, ok := gw.SLO(); ok {
				fmt.Printf("# slo: p95 objective %s, %d batch sheds (breaker engaged: %v)\n",
					slo.Target, slo.Sheds, slo.Engaged)
			}
			if spills := gw.SessionSpills(); spills > 0 {
				fmt.Printf("# session routing: %d saturation spills off the affine replica\n", spills)
			}
			if as := dp.Autoscaler(); as != nil {
				ast := as.Status()
				fmt.Printf("# autoscaler: %d replicas (target %d), %d scale-ups, %d scale-downs, %d cold-start holds\n",
					ast.Current, ast.Target, ast.ScaleUps, ast.ScaleDowns, st.Held)
			}
		}
		label := fmt.Sprintf("%s %s TP%d", pf.Name, m.Short, *tp)
		if *replicas > 1 {
			label = fmt.Sprintf("%s x%d (%s)", label, *replicas, *policy)
		}
		if wlRes != nil {
			if *artifact != "" {
				a := bench.NewWorkloadArtifact(label, wlSpec, wlReqs, wlRes)
				if err := bench.WriteWorkloadArtifact(*artifact, a); err != nil {
					failure = err
					return
				}
				fmt.Printf("# wrote %s\n", *artifact)
			}
		} else {
			series := bench.ToSeries(label, results)
			fmt.Println(metrics.DatFile("output token throughput vs max concurrency", []metrics.Series{series}))
			if *artifact != "" {
				if err := bench.WriteArtifact(*artifact, label, *stream, results); err != nil {
					failure = err
					return
				}
				fmt.Printf("# wrote %s\n", *artifact)
			}
		}
		if gw := dp.Gateway(); gw != nil && *traceOn {
			printSlowestTrace(gw)
		}
		if *observe != "" && dp.Gateway() != nil {
			client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
			if err := writeObserveArtifact(p, client, dp.BaseURL, *observe); err != nil {
				failure = err
				return
			}
		}
	})
	for i := 0; i < 100000 && !done; i++ {
		s.Eng.RunFor(10 * time.Minute)
	}
	if failure != nil {
		fatal(failure)
	}
}

// traceSampleStride traces one request in every 16 during a bench sweep —
// enough settled traces to populate the slow-request flight recorder
// without the per-trace allocations distorting the measured path.
const traceSampleStride = 16

// printSlowestTrace renders the slowest sampled trace's stage waterfall,
// the per-request decomposition behind the sweep's tail latency.
func printSlowestTrace(gw *ingress.Gateway) {
	slow := gw.Tracer.Slowest()
	if len(slow) == 0 {
		fmt.Println("# no traces sampled")
		return
	}
	_, sampled := gw.Tracer.Counts()
	fmt.Printf("# slowest of %d sampled traces:\n", sampled)
	fmt.Print(slow[0].Waterfall())
}

// writeObserveArtifact fetches the /observe fleet snapshot and writes the
// JSON document to path.
func writeObserveArtifact(p *sim.Proc, client *vhttp.Client, baseURL, path string) error {
	resp, err := client.Get(p, baseURL+telemetry.ObservePath)
	if err != nil {
		return fmt.Errorf("fetch %s: %w", telemetry.ObservePath, err)
	}
	if resp.Status != 200 {
		return fmt.Errorf("fetch %s: status %d", telemetry.ObservePath, resp.Status)
	}
	if err := os.WriteFile(path, resp.Body, 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}

// benchFleetConfig carries the flag values into the fleet bench run.
type benchFleetConfig struct {
	tp, maxLen, replicas int
	policy               string
	sloP95               time.Duration
	ttft                 time.Duration
	priority             string
	noPrefixCache        bool
	autoscale            *autoscale.Policy
	poolNodes            int
	prompts              int
	seed                 int64
	points               []int
	stream               bool
	artifact             string
	trace                bool
	observe              string
}

// benchFleet deploys a multi-model fleet and sweeps each model through the
// shared routing endpoint, so per-model throughput reflects pool
// arbitration and model-aware routing, not a private replica set.
func benchFleet(p *sim.Proc, s *site.Site, d *core.Deployer, pf core.Platform, entries []core.FleetFlagEntry, bc benchFleetConfig) error {
	models, err := core.SeedFleet(p, d, pf, core.DeployConfig{
		TensorParallel: bc.tp, MaxModelLen: bc.maxLen, Offline: true,
		Replicas: bc.replicas, RoutePolicy: bc.policy, Autoscale: bc.autoscale,
		SLOTargetP95: bc.sloP95, TTFTTarget: bc.ttft, PriorityClass: bc.priority,
		DisablePrefixCache: bc.noPrefixCache,
	}, entries)
	if err != nil {
		return err
	}
	fl, err := d.DeployFleet(p, core.VLLMPackage(), pf, core.FleetConfig{PoolNodes: bc.poolNodes}, models)
	if err != nil {
		return err
	}
	defer fl.Stop()
	fmt.Printf("# serving %d-model fleet on %s behind %s (pool: %d nodes)\n",
		len(fl.Models()), pf.Name, fl.BaseURL, bc.poolNodes)
	if bc.trace {
		for _, name := range fl.Models() {
			fl.Deployment(name).Gateway().TraceSampleEvery = traceSampleStride
		}
	}
	ds := sharegpt.Synthesize(bc.seed, 4000)
	var series []metrics.Series
	var all []*bench.Result
	for _, name := range fl.Models() {
		target := &bench.HTTPTarget{
			Client:  &vhttp.Client{Net: s.Net, From: site.LoginHops},
			BaseURL: fl.BaseURL,
			Model:   name,
			Stream:  bc.stream,
		}
		results := bench.Sweep(p, target, bench.Config{
			Name: name, Dataset: ds, NumPrompts: bc.prompts, Seed: bc.seed,
			ContinueOnError: true,
		}, bc.points)
		for _, r := range results {
			fmt.Println(r)
		}
		all = append(all, results...)
		series = append(series, bench.ToSeries(name, results))
	}
	rst := fl.Router().Stats()
	fmt.Printf("# router: %d routed, %d unknown-model\n", rst.Requests, rst.Unknown)
	for _, name := range fl.Models() {
		st := fl.Deployment(name).Gateway().Stats()
		fmt.Printf("# model %s: %d requests, %d retries, %d rejected, %d errors, %d holds\n",
			name, st.Requests, st.Retries, st.Rejected, st.Errors, st.Held)
	}
	fmt.Println(metrics.DatFile("output token throughput vs max concurrency (per model)", series))
	if bc.artifact != "" {
		if err := bench.WriteArtifact(bc.artifact, "fleet", bc.stream, all); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", bc.artifact)
	}
	if bc.trace {
		for _, name := range fl.Models() {
			fmt.Printf("# model %s:\n", name)
			printSlowestTrace(fl.Deployment(name).Gateway())
		}
	}
	if bc.observe != "" {
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		if err := writeObserveArtifact(p, client, fl.BaseURL, bc.observe); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchserve:", err)
	os.Exit(1)
}
