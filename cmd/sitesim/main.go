// Command sitesim runs the converged site in realtime mode and exposes the
// simulated services over real HTTP sockets, so the paper's Figure 7 curl
// works verbatim against the simulation:
//
//	sitesim -model meta-llama/Llama-3.1-8B-Instruct -tp 1 -max-model-len 8192 \
//	        -listen 127.0.0.1:8000 -speed 600
//
//	curl http://127.0.0.1:8000/v1/chat/completions \
//	  -H "Content-Type: application/json" \
//	  -d '{"messages":[{"role":"user","content":"How long to get from Earth to Mars?"}]}'
//
// -speed scales virtual time (600 = a 10-minute model load passes in 1s of
// wall clock); queries served after startup take realistic simulated time
// divided by the same factor.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
)

func main() {
	var (
		model  = flag.String("model", llm.Llama318B.Name, "model to serve")
		tp     = flag.Int("tp", 1, "tensor parallel size")
		maxLen = flag.Int("max-model-len", 8192, "context limit")
		listen = flag.String("listen", "127.0.0.1:8000", "real address to serve on")
		speed  = flag.Float64("speed", 600, "virtual-to-wall time ratio")
	)
	flag.Parse()

	m, err := llm.ByName(*model)
	if err != nil {
		fatal(err)
	}
	s := site.New(site.Options{Small: true, Seed: 1})
	d := core.NewDeployer(s)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	go s.Eng.RunRealtime(ctx, *speed)

	type deployed struct {
		dp  *core.Deployment
		err error
	}
	ch := make(chan deployed, 1)
	s.Eng.Inject(func() {
		s.Eng.Go("sitesim", func(p *sim.Proc) {
			if err := core.SeedModel(p, s.HopsLustre, m); err != nil {
				ch <- deployed{nil, err}
				return
			}
			dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
				Model: m, TensorParallel: *tp, MaxModelLen: *maxLen, Offline: true,
			})
			ch <- deployed{dp, err}
		})
	})
	fmt.Printf("sitesim: deploying %s on hops (virtual startup ÷ %.0f)...\n", m.Short, *speed)
	dep := <-ch
	if dep.err != nil {
		fatal(dep.err)
	}
	fmt.Printf("sitesim: ready — %s inside the fabric, serving on http://%s\n", dep.dp.BaseURL, *listen)

	// Bridge: the real HTTP server forwards into the virtual service.
	fwd := vhttp.ServiceFunc(func(p *sim.Proc, req *vhttp.Request) *vhttp.Response {
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		inner := *req
		inner.URL = dep.dp.BaseURL + req.Path
		resp, err := client.Do(p, &inner)
		if err != nil {
			return vhttp.Text(502, err.Error())
		}
		return resp
	})
	srv := &http.Server{Addr: *listen, Handler: vhttp.StdHandler(s.Eng, fwd, site.LoginHops)}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sitesim:", err)
	os.Exit(1)
}
