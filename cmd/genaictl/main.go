// Command genaictl is the unified container-deployment tool the paper's §4
// proposes: one interface that plans and executes GenAI service deployments
// across HPC (Slurm/Flux with Podman/Apptainer) and Kubernetes platforms,
// resolving runtime, platform, and site differences from package metadata.
//
// Everything runs against the simulated converged site, so every command is
// reproducible on a laptop:
//
//	genaictl packages                         # list deployable packages
//	genaictl platforms                        # list platforms
//	genaictl plan  -platform hops   -model meta-llama/Llama-4-Scout-17B-16E-Instruct -tp 4 -max-model-len 65536
//	genaictl plan  -platform eldorado ...     # same package, Apptainer+ROCm plan
//	genaictl plan  -platform goodall  ...     # same package, Helm values
//	genaictl deploy -platform hops  -model meta-llama/Llama-3.1-8B-Instruct -tp 1 -max-model-len 8192 -query "hello"
//	genaictl deploy -platform hops  -tp 1 -max-model-len 8192 -autoscale -pool-nodes 4 \
//	    -models "chat=meta-llama/Llama-3.1-8B-Instruct:2,code=Qwen/Qwen2.5-Coder-7B-Instruct:1" -query "hello"
//	genaictl fetch -model meta-llama/Llama-3.1-8B-Instruct    # hub → S3 workflow
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/autoscale"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ingress"
	"repro/internal/llm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vhttp"
	"repro/internal/vllm"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	switch cmd {
	case "packages":
		pkg := core.VLLMPackage()
		fmt.Printf("%-8s %s\n", pkg.Name, pkg.Description)
		for arch, image := range pkg.ImageByArch {
			fmt.Printf("         %-6s → %s\n", arch, image)
		}
	case "platforms":
		for _, pf := range []core.Platform{core.PlatformHops, core.PlatformEldorado, core.PlatformGoodall, core.PlatformCEE} {
			fmt.Printf("%-10s kind=%s\n", pf.Name, pf.Kind)
		}
	case "models":
		for _, m := range llm.Catalog() {
			fmt.Printf("%-60s %6.1f GiB (%s)\n", m.Name, float64(m.WeightBytes())/(1<<30), m.Quant)
		}
	case "plan":
		runPlan(args)
	case "deploy":
		runDeploy(args)
	case "trace":
		runTrace(args)
	case "observe":
		runObserve(args)
	case "fetch":
		runFetch(args)
	case "experiments":
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `genaictl — converged GenAI service deployment (simulated site)

commands:
  packages      list deployable container packages
  platforms     list target platforms
  models        list known models
  plan          render the deployment artifact for a platform
  deploy        deploy on the simulated site and optionally send a query
  trace         deploy, send one traced request, print its stage waterfall
  observe       deploy, apply brief load, print the /observe fleet snapshot
  fetch         run the model download → object storage workflow
  experiments   list reproducible experiments (see cmd/figures)`)
}

func platformByName(name string) (core.Platform, error) {
	for _, pf := range []core.Platform{core.PlatformHops, core.PlatformEldorado, core.PlatformGoodall, core.PlatformCEE} {
		if pf.Name == name {
			return pf, nil
		}
	}
	return core.Platform{}, fmt.Errorf("unknown platform %q", name)
}

// deployOpts collects the flags shared by plan and deploy.
type deployOpts struct {
	platform, model  *string
	tp, pp, maxLen   *int
	persistent       *bool
	replicas         *int
	policy           *string
	elastic          *bool
	minReps, maxReps *int
	targetQueue      *int
	sloP95           *time.Duration
	ttftTarget       *time.Duration
	priority         *string
	models           *string
	poolNodes        *int
	prefixCache      *bool
}

func deployFlags(fs *flag.FlagSet) *deployOpts {
	o := &deployOpts{}
	o.platform = fs.String("platform", "hops", "target platform (hops, eldorado, goodall, cee)")
	o.model = fs.String("model", llm.Scout.Name, "model name")
	o.tp = fs.Int("tp", 4, "tensor parallel size")
	o.pp = fs.Int("pp", 1, "pipeline parallel size (>1 = multi-node via Ray)")
	o.maxLen = fs.Int("max-model-len", 65536, "context length limit")
	o.persistent = fs.Bool("persistent", false, "Compute-as-Login persistent service (HPC)")
	o.replicas = fs.Int("replicas", 1, "engine instances behind one endpoint (>1 = replica set + gateway)")
	o.policy = fs.String("route-policy", "round-robin", "replica-set routing: round-robin, least-loaded, session (KV-cache affinity on the request's session key), prefix (session affinity plus sketch-based cache-aware placement)")
	o.elastic = fs.Bool("autoscale", false, "elastically resize the replica set from gateway load (HPC)")
	o.minReps = fs.Int("min-replicas", 0, "autoscale floor (0 = scale to zero when idle)")
	o.maxReps = fs.Int("max-replicas", 4, "autoscale ceiling")
	o.targetQueue = fs.Int("target-queue-depth", 0, "autoscale per-replica queue target (0 = default)")
	o.sloP95 = fs.Duration("slo-p95", 0, "p95 latency objective: shed batch-class requests while the gateway's rolling p95 breaches it (0 = off)")
	o.ttftTarget = fs.Duration("ttft-target", 0, "time-to-first-token objective stamped onto requests for the engine's deadline scheduler; batch class gets a relaxed multiple (0 = fall back to -slo-p95)")
	o.priority = fs.String("priority", "", "default priority class for unlabeled requests: interactive (default) or batch")
	o.models = fs.String("models", "", "multi-model fleet spec: alias=hf-name[:weight][:p95=dur][:ttft=dur][:class=name][:policy=name],... (e.g. \"chat=meta-llama/Llama-3.1-8B-Instruct:2:p95=30s,code=Qwen/Qwen2.5-Coder-7B-Instruct:1:class=batch\")")
	o.poolNodes = fs.Int("pool-nodes", 0, "shared node pool arbitrated across the fleet's models (0 = no arbitration)")
	o.prefixCache = fs.Bool("prefix-cache", true, "automatic prefix caching in the engine (vLLM --enable-prefix-caching); multi-turn sessions routed to their replica skip cached prefill")
	return o
}

// validate rejects bad inputs at flag-parse time, before any deployment
// machinery runs. Returns the parsed autoscale policy (nil when disabled).
func (o *deployOpts) validate() (*autoscale.Policy, error) {
	if *o.replicas < 1 {
		return nil, fmt.Errorf("-replicas must be at least 1 (got %d)", *o.replicas)
	}
	if _, err := ingress.ParsePolicy(*o.policy); err != nil {
		return nil, err
	}
	if _, err := sched.ParseClass(*o.priority); err != nil {
		return nil, err
	}
	if *o.sloP95 < 0 {
		return nil, fmt.Errorf("-slo-p95 must be >= 0 (got %s)", *o.sloP95)
	}
	if *o.ttftTarget < 0 {
		return nil, fmt.Errorf("-ttft-target must be >= 0 (got %s)", *o.ttftTarget)
	}
	if !*o.elastic {
		return nil, nil
	}
	pol := &autoscale.Policy{
		MinReplicas:      *o.minReps,
		MaxReplicas:      *o.maxReps,
		TargetQueueDepth: *o.targetQueue,
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return pol, nil
}

func (o *deployOpts) config(m *llm.ModelSpec, pol *autoscale.Policy) core.DeployConfig {
	return core.DeployConfig{
		Model: m, TensorParallel: *o.tp, PipelineParallel: *o.pp,
		MaxModelLen: *o.maxLen, Offline: true, Persistent: *o.persistent,
		Replicas: *o.replicas, RoutePolicy: *o.policy, Autoscale: pol,
		SLOTargetP95: *o.sloP95, TTFTTarget: *o.ttftTarget,
		PriorityClass:      *o.priority,
		DisablePrefixCache: !*o.prefixCache,
	}
}

func runPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	opts := deployFlags(fs)
	fs.Parse(args)
	pol, err := opts.validate()
	fatalIf(err)
	pf, err := platformByName(*opts.platform)
	fatalIf(err)
	m, err := llm.ByName(*opts.model)
	fatalIf(err)
	s := site.New(site.Options{Small: true, Seed: 1})
	d := core.NewDeployer(s)
	plan, err := d.Plan(core.VLLMPackage(), pf, opts.config(m, pol))
	fatalIf(err)
	fmt.Printf("# platform: %s   runtime: %s   image: %s\n", plan.Platform.Name, plan.Runtime, plan.Image)
	fmt.Println(plan.Artifact)
	for _, n := range plan.Notes {
		fmt.Println("# note:", n)
	}
}

func runDeploy(args []string) {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	opts := deployFlags(fs)
	query := fs.String("query", "", "send one chat completion after deploying")
	stream := fs.Bool("stream", false, "stream the -query response over SSE, reporting time to first token")
	wl := fs.String("workload", "", "drive a workload preset or spec file against the deployment (e.g. steady, diurnal-chat)")
	wlTrace := fs.String("trace-file", "", "workload trace JSONL: replay it if the file exists, else record the generated workload to it")
	wlArtifact := fs.String("workload-artifact", "", "write per-cohort workload results to this JSON file (e.g. BENCH_workload.json)")
	fs.Parse(args)
	pol, err := opts.validate()
	fatalIf(err)
	if *opts.models != "" {
		if *wl != "" || *wlTrace != "" {
			fatalIf(fmt.Errorf("-workload/-trace-file drive a single-model deployment (drop -models)"))
		}
		runDeployFleet(opts, pol, *query)
		return
	}
	pf, err := platformByName(*opts.platform)
	fatalIf(err)
	m, err := llm.ByName(*opts.model)
	fatalIf(err)

	s := site.New(site.Options{Small: true, Seed: 1})
	d := core.NewDeployer(s)
	var failure error
	done := false
	s.Eng.Go("genaictl", func(p *sim.Proc) {
		defer func() { done = true }()
		// Seed the model onto the right substrate (the fetch/stage pipeline
		// is exercised by `genaictl fetch` and the test suite).
		switch pf.Kind {
		case "k8s":
			failure = core.SeedModelToS3(p, d, m)
		default:
			fsys := s.HopsLustre
			if pf.Name == "eldorado" {
				fsys = s.EldoradoLustre
			}
			failure = core.SeedModel(p, fsys, m)
		}
		if failure != nil {
			return
		}
		start := p.Now()
		dp, err := d.Deploy(p, core.VLLMPackage(), pf, opts.config(m, pol))
		if err != nil {
			failure = err
			return
		}
		fmt.Printf("deployed %s on %s in %s (simulated)\n", m.Short, pf.Name, p.Now().Sub(start).Round(time.Second))
		fmt.Printf("  endpoint: %s\n", dp.BaseURL)
		if dp.ExternalURL != "" && dp.ExternalURL != dp.BaseURL {
			fmt.Printf("  external: %s\n", dp.ExternalURL)
		}
		if gw := dp.Gateway(); gw != nil {
			fmt.Printf("  replicas: %d (%s routing)\n", len(dp.Replicas()), gw.Policy)
			for _, r := range dp.Replicas() {
				fmt.Printf("    - %s\n", r.BaseURL)
			}
			if pol != nil {
				resolved := pol.WithDefaults()
				fmt.Printf("  autoscale: %d–%d replicas, target queue %d/replica, scale-to-zero after %s idle\n",
					resolved.MinReplicas, resolved.MaxReplicas, resolved.TargetQueueDepth, resolved.ScaleToZeroAfter)
			}
			if *opts.sloP95 > 0 {
				fmt.Printf("  slo: p95 objective %s (batch-class requests shed while breached)\n", *opts.sloP95)
			}
			if *opts.ttftTarget > 0 {
				fmt.Printf("  ttft: %s objective (engines admit by deadline urgency)\n", *opts.ttftTarget)
			}
			if *opts.priority != "" {
				fmt.Printf("  priority: unlabeled requests default to the %s class\n", *opts.priority)
			}
		}
		if *query != "" {
			client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
			body, _ := json.Marshal(vllm.ChatRequest{
				Messages: []vllm.ChatMessage{{Role: "user", Content: *query}}, MaxTokens: 64,
				Stream: *stream,
			})
			t0 := p.Now()
			resp, err := client.Do(p, &vhttp.Request{Method: "POST", URL: dp.BaseURL + "/v1/chat/completions", Body: body})
			if err != nil {
				failure = err
				return
			}
			if resp.Stream != nil {
				// Consume the SSE body chunk by chunk; the first delta's
				// arrival is the client-observed time to first token.
				tokens, ttft := 0, time.Duration(0)
				for {
					c, ok := resp.Stream.Next(p)
					if !ok {
						break
					}
					if payload, isEvent := vllm.ParseSSE(c.Data); isEvent && string(payload) != "[DONE]" {
						if tokens == 0 {
							ttft = p.Now().Sub(t0)
						}
						tokens++
					}
				}
				if err := resp.Stream.Err(); err != nil {
					failure = fmt.Errorf("stream truncated: %w", err)
					return
				}
				fmt.Printf("  query streamed: first token in %s, %d chunks, done in %s\n",
					ttft.Round(time.Millisecond), tokens, p.Now().Sub(t0).Round(time.Millisecond))
			} else {
				var cr vllm.ChatResponse
				json.Unmarshal(resp.Body, &cr)
				fmt.Printf("  query answered in %s: %d completion tokens\n",
					p.Now().Sub(t0).Round(time.Millisecond), cr.Usage.CompletionTokens)
			}
		}
		if *wl != "" || *wlTrace != "" {
			wlSpec, wlReqs, src, err := bench.ResolveWorkload(*wl, m.Name, *wlTrace)
			if err != nil {
				failure = err
				return
			}
			sum := workload.Summarize(wlReqs)
			fmt.Printf("  workload: %s (%d sessions, %d clients, %s span)\n", src, sum.Sessions, sum.Clients, sum.Span)
			client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
			res := bench.RunWorkload(p, &bench.HTTPTarget{Client: client, BaseURL: dp.BaseURL}, wlSpec.Name, wlReqs)
			fmt.Print(res)
			if *wlArtifact != "" {
				label := fmt.Sprintf("%s %s x%d", pf.Name, m.Short, *opts.replicas)
				if err := bench.WriteWorkloadArtifact(*wlArtifact, bench.NewWorkloadArtifact(label, wlSpec, wlReqs, res)); err != nil {
					failure = err
					return
				}
				fmt.Printf("  wrote %s\n", *wlArtifact)
			}
		}
		dp.Stop()
	})
	drive(s, &done)
	fatalIf(failure)
}

// runDeployFleet deploys a multi-model fleet behind one routing endpoint.
func runDeployFleet(opts *deployOpts, pol *autoscale.Policy, query string) {
	entries, err := core.ParseFleetFlag(*opts.models)
	fatalIf(err)
	pf, err := platformByName(*opts.platform)
	fatalIf(err)
	if pf.Kind == "k8s" {
		fatalIf(fmt.Errorf("-models deploys on HPC platforms (got %s)", pf.Name))
	}

	s := site.New(site.Options{Small: true, Seed: 1})
	d := core.NewDeployer(s)
	var failure error
	done := false
	s.Eng.Go("genaictl", func(p *sim.Proc) {
		defer func() { done = true }()
		models, err := core.SeedFleet(p, d, pf, opts.config(nil, pol), entries)
		if err != nil {
			failure = err
			return
		}
		start := p.Now()
		fleet, err := d.DeployFleet(p, core.VLLMPackage(), pf, core.FleetConfig{PoolNodes: *opts.poolNodes}, models)
		if err != nil {
			failure = err
			return
		}
		defer fleet.Stop()
		fmt.Printf("deployed %d-model fleet on %s in %s (simulated)\n", len(models), pf.Name, p.Now().Sub(start).Round(time.Second))
		fmt.Printf("  endpoint: %s (routes on the request's `model` field)\n", fleet.BaseURL)
		if *opts.poolNodes > 0 {
			fmt.Printf("  pool:     %d nodes shared across the fleet\n", *opts.poolNodes)
		}
		for _, name := range fleet.Models() {
			dp := fleet.Deployment(name)
			fmt.Printf("  model %-40s %d replicas (%s routing)\n", name, dp.CurrentReplicas(), dp.Gateway().Policy)
		}
		if query != "" {
			client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
			for _, name := range fleet.Models() {
				body, _ := json.Marshal(vllm.ChatRequest{
					Model:    name,
					Messages: []vllm.ChatMessage{{Role: "user", Content: query}}, MaxTokens: 64,
				})
				t0 := p.Now()
				resp, err := client.Do(p, &vhttp.Request{Method: "POST", URL: fleet.BaseURL + "/v1/chat/completions", Body: body})
				if err != nil {
					failure = err
					return
				}
				var cr vllm.ChatResponse
				json.Unmarshal(resp.Body, &cr)
				fmt.Printf("  query %-40s answered in %s: %d completion tokens\n",
					name, p.Now().Sub(t0).Round(time.Millisecond), cr.Usage.CompletionTokens)
			}
		}
	})
	drive(s, &done)
	fatalIf(failure)
}

// runTrace deploys a replica set, sends one streamed request tagged with
// an X-Trace-Id, and prints the settled trace's stage waterfall fetched
// back from the gateway's /traces endpoint.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	opts := deployFlags(fs)
	query := fs.String("query", "Trace this request end to end.", "prompt for the traced request")
	id := fs.String("id", "genaictl-trace-1", "trace ID sent as the X-Trace-Id header")
	fs.Parse(args)
	if *opts.replicas < 2 {
		// Tracing lives in the gateway; a single bare engine has no
		// /traces endpoint to fetch the settled trace from.
		*opts.replicas = 2
	}
	pol, err := opts.validate()
	fatalIf(err)
	pf, err := platformByName(*opts.platform)
	fatalIf(err)
	m, err := llm.ByName(*opts.model)
	fatalIf(err)

	s := site.New(site.Options{Small: true, Seed: 1})
	d := core.NewDeployer(s)
	var failure error
	done := false
	s.Eng.Go("genaictl", func(p *sim.Proc) {
		defer func() { done = true }()
		if failure = core.SeedModel(p, s.HopsLustre, m); failure != nil {
			return
		}
		dp, err := d.Deploy(p, core.VLLMPackage(), pf, opts.config(m, pol))
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		body, _ := json.Marshal(vllm.ChatRequest{
			Messages:  []vllm.ChatMessage{{Role: "user", Content: *query}},
			MaxTokens: 64, Stream: true,
		})
		resp, err := client.Do(p, &vhttp.Request{
			Method: "POST", URL: dp.BaseURL + "/v1/chat/completions", Body: body,
			Header: map[string]string{trace.Header: *id},
		})
		if err != nil {
			failure = err
			return
		}
		if resp.Stream != nil {
			for {
				if _, ok := resp.Stream.Next(p); !ok {
					break
				}
			}
			if err := resp.Stream.Err(); err != nil {
				failure = fmt.Errorf("stream truncated: %w", err)
				return
			}
		}
		tresp, err := client.Get(p, dp.BaseURL+trace.Path+"?id="+*id)
		if err != nil || tresp.Status != 200 {
			failure = fmt.Errorf("fetch trace %s: status=%d err=%v", *id, tresp.Status, err)
			return
		}
		var tr trace.Trace
		if err := json.Unmarshal(tresp.Body, &tr); err != nil {
			failure = err
			return
		}
		fmt.Print(tr.Waterfall())
	})
	drive(s, &done)
	fatalIf(failure)
}

// runObserve deploys a replica set, applies a brief burst of load, and
// pretty-prints the one-stop /observe fleet snapshot.
func runObserve(args []string) {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	opts := deployFlags(fs)
	load := fs.Int("load", 8, "requests to send before snapshotting")
	fs.Parse(args)
	if *opts.replicas < 2 {
		*opts.replicas = 2
	}
	pol, err := opts.validate()
	fatalIf(err)
	pf, err := platformByName(*opts.platform)
	fatalIf(err)
	m, err := llm.ByName(*opts.model)
	fatalIf(err)

	s := site.New(site.Options{Small: true, Seed: 1})
	d := core.NewDeployer(s)
	var failure error
	done := false
	s.Eng.Go("genaictl", func(p *sim.Proc) {
		defer func() { done = true }()
		if failure = core.SeedModel(p, s.HopsLustre, m); failure != nil {
			return
		}
		dp, err := d.Deploy(p, core.VLLMPackage(), pf, opts.config(m, pol))
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		for i := 0; i < *load; i++ {
			body, _ := json.Marshal(vllm.ChatRequest{
				Messages:  []vllm.ChatMessage{{Role: "user", Content: fmt.Sprintf("load %d", i)}},
				MaxTokens: 32,
			})
			if _, err := client.Do(p, &vhttp.Request{
				Method: "POST", URL: dp.BaseURL + "/v1/chat/completions", Body: body,
			}); err != nil {
				failure = err
				return
			}
		}
		// Let the gateway's next probe round land so the snapshot carries
		// fresh per-replica telemetry instead of "never scraped".
		p.Sleep(20 * time.Second)
		resp, err := client.Get(p, dp.BaseURL+telemetry.ObservePath)
		if err != nil || resp.Status != 200 {
			failure = fmt.Errorf("fetch /observe: status=%d err=%v", resp.Status, err)
			return
		}
		f, err := telemetry.DecodeFleet(resp.Body)
		if err != nil {
			failure = err
			return
		}
		printFleet(f)
	})
	drive(s, &done)
	fatalIf(failure)
}

// printFleet renders a FleetSnapshot for the terminal.
func printFleet(f telemetry.FleetSnapshot) {
	fmt.Printf("fleet snapshot @ %s\n", f.CapturedAt.Format(time.RFC3339))
	if f.Router != nil {
		fmt.Printf("router: %d requests, %d unknown\n", f.Router.Requests, f.Router.Unknown)
	}
	for _, mo := range f.Models {
		fmt.Printf("model %s  policy=%s serviceable=%v healthy=%d holding=%d\n",
			mo.Model, mo.Policy, mo.Serviceable, mo.HealthyBackends, mo.Holding)
		c := mo.Counters
		fmt.Printf("  requests=%d retries=%d rejected=%d errors=%d held=%d streams=%d truncated=%d spills=%d\n",
			c.Requests, c.Retries, c.Rejected, c.Errors, c.Held, c.Streams, c.StreamsTruncated, c.SessionSpills)
		if c.SketchRoutes > 0 || c.Warmups > 0 {
			fmt.Printf("  cache-aware sketch-routes=%d warmups=%d\n", c.SketchRoutes, c.Warmups)
		}
		if len(mo.LatencyMillis) > 0 {
			fmt.Printf("  latency p50=%.1fms p95=%.1fms p99=%.1fms\n",
				mo.LatencyMillis["p50"], mo.LatencyMillis["p95"], mo.LatencyMillis["p99"])
		}
		if mo.SLO != nil {
			fmt.Printf("  slo target=%.0fms p95=%.1fms engaged=%v sheds=%d\n",
				mo.SLO.TargetMillis, mo.SLO.P95Millis, mo.SLO.Engaged, mo.SLO.Sheds)
		}
		if mo.Traces != nil {
			fmt.Printf("  traces %d/%d sampled", mo.Traces.Sampled, mo.Traces.Total)
			if mo.Traces.SlowestID != "" {
				fmt.Printf(", slowest %s (%.1fms)", mo.Traces.SlowestID, mo.Traces.SlowestMillis)
			}
			fmt.Println()
		}
		for _, r := range mo.Replicas {
			age := "never"
			if r.SnapshotAgeMillis >= 0 {
				age = fmt.Sprintf("%.0fms", r.SnapshotAgeMillis)
			}
			fmt.Printf("  replica %-12s healthy=%v inflight=%d requests=%d failures=%d snapshot-age=%s",
				r.Name, r.Healthy, r.Inflight, r.Requests, r.Failures, age)
			if s := r.Snapshot; s.WindowPrefixHits+s.WindowPrefixMisses > 0 || s.KVHostBlocksTotal > 0 {
				fmt.Printf(" window-hit-rate=%.2f host-kv=%d/%d promotions=%d demotions=%d",
					s.WindowPrefixHitRate(), s.KVHostBlocksUsed, s.KVHostBlocksTotal,
					s.TierPromotions, s.TierDemotions)
			}
			fmt.Println()
		}
	}
}

func runFetch(args []string) {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	model := fs.String("model", llm.Llama318B.Name, "model to download")
	token := fs.String("token", "hf_token", "hub access token")
	fs.Parse(args)
	m, err := llm.ByName(*model)
	fatalIf(err)
	s := site.New(site.Options{Small: true, Seed: 1})
	d := core.NewDeployer(s)
	var failure error
	done := false
	s.Eng.Go("genaictl", func(p *sim.Proc) {
		defer func() { done = true }()
		start := p.Now()
		if failure = d.FetchModel(p, m, *token); failure != nil {
			return
		}
		fmt.Printf("fetched %s: %.1f GiB cloned on %s, synced to s3://%s/%s in %s (simulated)\n",
			m.Short, float64(m.RepoBytes())/(1<<30), site.BuildHost, site.ModelBucket, m.Name,
			p.Now().Sub(start).Round(time.Second))
	})
	drive(s, &done)
	fatalIf(failure)
}

// drive advances the simulation until the command's process completes.
func drive(s *site.Site, done *bool) {
	for i := 0; i < 100000 && !*done; i++ {
		s.Eng.RunFor(10 * time.Minute)
	}
	if !*done {
		fatalIf(fmt.Errorf("simulation did not converge"))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genaictl:", err)
		os.Exit(1)
	}
}
