// Command figures regenerates the paper's tables and figures. For each
// experiment it writes a gnuplot-style .dat file plus a summary block with
// paper-vs-measured anchors.
//
// Usage:
//
//	figures -all                 # every experiment (full sweeps)
//	figures -id fig9             # one experiment
//	figures -quick -all          # thinned sweeps for a fast pass
//	figures -out results         # output directory (default results/)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		id    = flag.String("id", "", "experiment id (fig9, fig10, fig12, startup, regpull, s3route, ingress, quant, parallel, maxlen)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "thin the sweeps for a fast pass")
		out   = flag.String("out", "results", "output directory for .dat files")
		seed  = flag.Int64("seed", 42, "simulation seed")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	var ids []string
	switch {
	case *all:
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	case *id != "":
		ids = []string{*id}
	default:
		fmt.Fprintln(os.Stderr, "figures: pass -id <experiment> or -all (see -list)")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	failed := false
	for _, eid := range ids {
		fmt.Printf("==> %s\n", eid)
		res, err := experiments.RunOne(eid, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", eid, err)
			failed = true
			continue
		}
		path := filepath.Join(*out, res.ID+".dat")
		if err := os.WriteFile(path, []byte(res.Dat()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			failed = true
			continue
		}
		fmt.Printf("    wrote %s\n", path)
		if res.Table != "" {
			fmt.Println(indent(res.Table, "    "))
		}
		for _, a := range res.Anchors {
			fmt.Printf("    anchor %-55s paper %8.1f %-5s measured %8.1f (%+.1f%%)\n",
				a.Name, a.Paper, a.Unit, a.Measured, a.Deviation()*100)
		}
		for _, n := range res.Notes {
			fmt.Printf("    note: %s\n", n)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func indent(s, pad string) string {
	out := pad
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += pad
		}
	}
	return out
}
