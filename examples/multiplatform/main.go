// Multiplatform: the paper's central observation made executable — the
// identical vLLM container package deployed on three platforms with three
// different mechanisms (Podman on Slurm/Hops, Apptainer on Flux/El Dorado,
// Helm on Kubernetes/Goodall), then benchmarked briefly on each.
//
//	go run ./examples/multiplatform
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 11})
	d := core.NewDeployer(s)

	var failure error
	done := false
	s.Eng.Go("multiplatform", func(p *sim.Proc) {
		defer func() { done = true }()
		ds := sharegpt.Synthesize(1, 2000)

		type target struct {
			pf    core.Platform
			model *llm.ModelSpec
			tp    int
		}
		targets := []target{
			{core.PlatformHops, llm.Scout, 4},
			{core.PlatformEldorado, llm.Scout, 4},
			{core.PlatformGoodall, llm.ScoutW4A16, 2},
		}
		fmt.Println("platform    runtime    image                                       batch-16 tok/s   TTFT p99 (ms)")
		for _, tgt := range targets {
			// Stage weights on the right substrate.
			switch tgt.pf.Kind {
			case "k8s":
				failure = core.SeedModelToS3(p, d, tgt.model)
			default:
				fsys := s.HopsLustre
				if tgt.pf.Name == "eldorado" {
					fsys = s.EldoradoLustre
				}
				failure = core.SeedModel(p, fsys, tgt.model)
			}
			if failure != nil {
				return
			}
			plan, err := d.Plan(core.VLLMPackage(), tgt.pf, core.DeployConfig{
				Model: tgt.model, TensorParallel: tgt.tp, MaxModelLen: 65536, Offline: true,
			})
			if err != nil {
				failure = err
				return
			}
			dp, err := d.Deploy(p, core.VLLMPackage(), tgt.pf, core.DeployConfig{
				Model: tgt.model, TensorParallel: tgt.tp, MaxModelLen: 65536, Offline: true,
			})
			if err != nil {
				failure = fmt.Errorf("%s: %w", tgt.pf.Name, err)
				return
			}
			res := bench.Run(p, &bench.HTTPTarget{
				Client:  &vhttp.Client{Net: s.Net, From: site.LoginHops},
				BaseURL: dp.BaseURL,
			}, bench.Config{
				Name: tgt.pf.Name, Dataset: ds, NumPrompts: 200, MaxConcurrency: 16, Seed: 5,
			})
			fmt.Printf("%-11s %-10s %-42s %8.0f %15.0f\n",
				tgt.pf.Name, plan.Runtime, plan.Image, res.OutputThroughput, res.TTFT.P99())
			dp.Stop()
		}
		fmt.Println("\nsame container image per accelerator family; only the deployment syntax differed.")
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
}
