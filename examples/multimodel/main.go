// Multimodel: the multi-model serving path — a chat model and a code model
// sharing one 4-node GPU pool behind a single model-routing endpoint. An
// open-loop generator drives the two models through out-of-phase diurnal
// peaks (chat busy while code idles, then the reverse); the router
// dispatches on the request's `model` field, and the pool arbiter lets the
// bursting model reclaim the idle model's surplus replicas via graceful
// drains instead of failing on node exhaustion. The acceptance bar: both
// models track their own peaks, the pool never oversubscribes its 4 nodes,
// and no user-visible request fails across every scale, drain, and reclaim
// event.
//
//	go run ./examples/multimodel
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

// load is one model's mean open-loop arrival rate within a phase.
type load struct {
	model string
	rps   float64
}

// phase is one segment of the compressed out-of-phase diurnal profile.
type phase struct {
	name string
	dur  time.Duration
	rps  []load // deterministic order: the generator picks by position
}

func main() {
	s := site.New(site.Options{Small: true, Seed: 11})
	d := core.NewDeployer(s)

	const (
		chat      = "chat"
		code      = "code"
		poolNodes = 4
	)
	// Scale-down is deliberately sticky (30m cooldown, longer than a peak):
	// an idle model coasts on its surplus, so the only way the other
	// model's burst fits the pool is arbiter preemption — the reclaim path
	// this demo exists to show.
	elastic := func() *autoscale.Policy {
		return &autoscale.Policy{
			MinReplicas: 1, MaxReplicas: 3, TargetQueueDepth: 6,
			Interval: 15 * time.Second, ScaleUpCooldown: 45 * time.Second,
			ScaleDownCooldown: 30 * time.Minute, ScaleToZeroAfter: time.Hour,
		}
	}

	var failure error
	done := false
	s.Eng.Go("multimodel-demo", func(p *sim.Proc) {
		defer func() { done = true }()
		for _, m := range []*llm.ModelSpec{llm.Llama318B, llm.Qwen25Coder7B} {
			if failure = core.SeedModel(p, s.HopsLustre, m); failure != nil {
				return
			}
		}

		fmt.Printf("deploying a 2-model fleet on a shared %d-node pool ...\n", poolNodes)
		fleet, err := d.DeployFleet(p, core.VLLMPackage(), core.PlatformHops, core.FleetConfig{PoolNodes: poolNodes}, []core.FleetModel{
			{Weight: 2, Config: core.DeployConfig{
				Model: llm.Llama318B, ServedName: chat, TensorParallel: 1,
				MaxModelLen: 8192, Offline: true, Replicas: 1,
				RoutePolicy: "least-loaded", Autoscale: elastic(),
			}},
			{Weight: 1, Config: core.DeployConfig{
				Model: llm.Qwen25Coder7B, ServedName: code, TensorParallel: 1,
				MaxModelLen: 8192, Offline: true, Replicas: 1,
				RoutePolicy: "least-loaded", Autoscale: elastic(),
			}},
		})
		if err != nil {
			failure = err
			return
		}
		defer fleet.Stop()
		fmt.Printf("endpoint: %s routes models %v\n\n", fleet.BaseURL, fleet.Models())

		phases := []phase{
			{"quiet", 10 * time.Minute, []load{{chat, 0.2}, {code, 0.1}}},
			{"chat peak / code idle", 35 * time.Minute, []load{{chat, 3.2}, {code, 0.1}}},
			{"code peak / chat idle", 35 * time.Minute, []load{{code, 3.2}, {chat, 0.1}}},
			{"wind-down", 10 * time.Minute, []load{{chat, 0.1}, {code, 0.1}}},
		}

		// Sampler: per-model replica counts, pool usage, and reclaim events.
		start := p.Now()
		maxReplicas := map[string]int{}
		maxPoolNodes := 0
		reclaims := 0
		last := map[string]int{}
		p.Engine().Go("sampler", func(sp *sim.Proc) {
			for !done {
				used := 0
				for _, name := range fleet.Models() {
					dp := fleet.Deployment(name)
					n := dp.CurrentReplicas()
					used += n
					if n > maxReplicas[name] {
						maxReplicas[name] = n
					}
					if prev, ok := last[name]; !ok || prev != n {
						reason := dp.Autoscaler().Status().Reason
						if strings.Contains(reason, "pool arbitration") && n < prev {
							reclaims++
						}
						fmt.Printf("[%6s] %-4s replicas %d → %d  (%s)\n",
							sp.Now().Sub(start).Round(time.Second), name, prev, n, reason)
						last[name] = n
					}
				}
				if used > maxPoolNodes {
					maxPoolNodes = used
				}
				sp.Sleep(15 * time.Second)
			}
		})

		// Open-loop per-model generators, one per phase entry.
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		sent := map[string]int{}
		failed := map[string]int{}
		wrongModel := 0
		inflight := s.Eng.NewGroup()
		rng := s.Eng.Rand()
		ask := func(model, prompt string) []byte {
			b, _ := json.Marshal(vllm.ChatRequest{
				Model:     model,
				Messages:  []vllm.ChatMessage{{Role: "user", Content: prompt}},
				MaxTokens: 128,
			})
			return b
		}
		bodies := map[string][]byte{
			chat: ask(chat, "What is on the lunch menu today?"),
			code: ask(code, "Write a function that reverses a linked list."),
		}
		for _, ph := range phases {
			fmt.Printf("--- %s (%s) ---\n", ph.name, ph.dur)
			end := p.Now().Add(ph.dur)
			total := 0.0
			for _, l := range ph.rps {
				total += l.rps
			}
			for p.Now().Before(end) {
				if total == 0 {
					p.Sleep(end.Sub(p.Now()))
					break
				}
				gap := time.Duration(rng.ExpFloat64() / total * float64(time.Second))
				p.Sleep(gap)
				if !p.Now().Before(end) {
					break
				}
				// Pick the model proportionally to its phase rate.
				pick := rng.Float64() * total
				model := ph.rps[0].model
				for _, l := range ph.rps {
					if pick < l.rps {
						model = l.model
						break
					}
					pick -= l.rps
				}
				sent[model]++
				id := sent[model]
				inflight.Add(1)
				m := model
				p.Engine().Go(fmt.Sprintf("user-%s-%d", m, id), func(rp *sim.Proc) {
					defer inflight.Finish()
					resp, err := client.Do(rp, &vhttp.Request{
						Method: "POST", URL: fleet.BaseURL + "/v1/chat/completions",
						Header: map[string]string{"Content-Type": "application/json"},
						Body:   bodies[m],
					})
					if err != nil || resp.Status != 200 {
						failed[m]++
						return
					}
					var cr vllm.ChatResponse
					if json.Unmarshal(resp.Body, &cr) == nil && cr.Model != m {
						wrongModel++
					}
				})
			}
		}
		inflight.WaitAll(p)

		// A typo'd model name is self-diagnosing: 404 plus the served list.
		resp, err := client.Do(p, &vhttp.Request{
			Method: "POST", URL: fleet.BaseURL + "/v1/chat/completions",
			Body: ask("gpt-5", "hello"),
		})
		if err != nil {
			failure = fmt.Errorf("unknown-model probe: %v", err)
			return
		}
		if resp.Status != 404 || !strings.Contains(string(resp.Body), chat) {
			failure = fmt.Errorf("unknown model should 404 with the served list: %d %s", resp.Status, resp.Body)
			return
		}

		fmt.Printf("\nday complete in %s simulated\n", p.Now().Sub(start).Round(time.Minute))
		rst := fleet.Router().Stats()
		fmt.Printf("  router:  %d routed, %d unknown-model 404s\n", rst.Requests, rst.Unknown)
		totalFailed := 0
		for _, name := range fleet.Models() {
			st := fleet.Deployment(name).Gateway().Stats()
			totalFailed += failed[name]
			fmt.Printf("  %-4s  %d sent, %d failed; gateway: %d retries, %d errors, %d holds; peak %d replicas\n",
				name, sent[name], failed[name], st.Retries, st.Errors, st.Held, maxReplicas[name])
		}
		fmt.Printf("  pool:  peak %d of %d nodes in use, %d arbiter reclaims observed\n",
			maxPoolNodes, poolNodes, reclaims)

		switch {
		case totalFailed > 0:
			failure = fmt.Errorf("user-visible failures: %d failed requests", totalFailed)
		case wrongModel > 0:
			failure = fmt.Errorf("%d responses came from the wrong model", wrongModel)
		case maxPoolNodes > poolNodes:
			failure = fmt.Errorf("pool oversubscribed: %d nodes in use (capacity %d)", maxPoolNodes, poolNodes)
		case maxReplicas[chat] < 2 || maxReplicas[code] < 2:
			failure = fmt.Errorf("replicas never tracked the peaks (chat %d, code %d)", maxReplicas[chat], maxReplicas[code])
		case reclaims == 0:
			failure = fmt.Errorf("the pool arbiter never reclaimed idle surplus for a bursting model")
		default:
			fmt.Println("\nboth models tracked their out-of-phase peaks on one shared pool —",
				"zero failed requests across every scale, drain, and reclaim event.")
		}
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
}
