// Autoscale: the elastic serving path — a replica set that tracks a
// compressed diurnal workload between zero and four instances. An open-loop
// generator drives the gateway through a night → morning ramp → midday peak
// → evening → night profile; the autoscaler grows the set as queues deepen,
// drains surplus replicas as demand falls, releases everything at night
// (scale-to-zero), and cold-starts from zero when the first morning request
// arrives — which waits at the gateway instead of failing. The acceptance
// bar: replica count tracks load with zero user-visible failed requests
// across every scale-up, drain, and cold-start event.
//
//	go run ./examples/autoscale
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

// phase is one segment of the compressed diurnal profile.
type phase struct {
	name string
	dur  time.Duration
	rps  float64 // mean open-loop arrival rate
}

func main() {
	s := site.New(site.Options{Small: true, Seed: 7})
	d := core.NewDeployer(s)
	model := llm.Llama318B

	var failure error
	done := false
	s.Eng.Go("autoscale-demo", func(p *sim.Proc) {
		defer func() { done = true }()
		if failure = core.SeedModel(p, s.HopsLustre, model); failure != nil {
			return
		}

		fmt.Println("deploying an elastic replica set (0–4 replicas) of", model.Short, "...")
		dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
			Model: model, TensorParallel: 1, MaxModelLen: 8192, Offline: true,
			Replicas: 1, RoutePolicy: "least-loaded",
			Autoscale: &autoscale.Policy{
				MinReplicas: 0, MaxReplicas: 4, TargetQueueDepth: 6,
				Interval: 15 * time.Second, ScaleUpCooldown: time.Minute,
				ScaleDownCooldown: 3 * time.Minute, ScaleToZeroAfter: 8 * time.Minute,
			},
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		fmt.Printf("endpoint: %s (stable across every scale event)\n\n", dp.BaseURL)

		phases := []phase{
			{"night", 25 * time.Minute, 0},
			{"morning ramp", 30 * time.Minute, 0.6},
			{"midday peak", 40 * time.Minute, 2.5},
			{"evening", 30 * time.Minute, 0.4},
			{"night again", 30 * time.Minute, 0},
		}

		// Sampler: record the replica count over time and announce changes.
		start := p.Now()
		maxReplicas := 0
		sawZero := false
		p.Engine().Go("sampler", func(sp *sim.Proc) {
			last := -1
			for !done {
				n := dp.CurrentReplicas()
				if n != last {
					st := dp.Autoscaler().Status()
					fmt.Printf("[%6s] replicas %d → %d  (%s)\n",
						sp.Now().Sub(start).Round(time.Second), last, n, st.Reason)
					last = n
				}
				if n > maxReplicas {
					maxReplicas = n
				}
				if n == 0 {
					sawZero = true
				}
				sp.Sleep(30 * time.Second)
			}
		})

		// Open-loop diurnal generator: requests arrive at the phase's rate
		// regardless of how fast they complete — the workload shape an HPC
		// center actually sees from an interactive chat service.
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		body, _ := json.Marshal(vllm.ChatRequest{
			Messages:  []vllm.ChatMessage{{Role: "user", Content: "What is on the lunch menu today?"}},
			MaxTokens: 128,
		})
		var sent, completed, failed int
		inflight := s.Eng.NewGroup()
		rng := s.Eng.Rand()
		for _, ph := range phases {
			fmt.Printf("--- %s (%s at %.1f req/s) ---\n", ph.name, ph.dur, ph.rps)
			end := p.Now().Add(ph.dur)
			if ph.rps == 0 {
				p.Sleep(ph.dur)
				continue
			}
			for p.Now().Before(end) {
				gap := time.Duration(rng.ExpFloat64() / ph.rps * float64(time.Second))
				p.Sleep(gap)
				if !p.Now().Before(end) {
					break
				}
				sent++
				id := sent
				inflight.Add(1)
				p.Engine().Go(fmt.Sprintf("user-%d", id), func(rp *sim.Proc) {
					defer inflight.Finish()
					resp, err := client.Do(rp, &vhttp.Request{
						Method: "POST", URL: dp.BaseURL + "/v1/chat/completions",
						Header: map[string]string{"Content-Type": "application/json"},
						Body:   body,
					})
					if err != nil || resp.Status != 200 {
						failed++
					} else {
						completed++
					}
				})
			}
		}
		inflight.WaitAll(p)
		// Let the tail of the day drain to zero before the verdict.
		for i := 0; i < 60 && dp.CurrentReplicas() > 0; i++ {
			p.Sleep(30 * time.Second)
		}

		st := dp.Gateway().Stats()
		ast := dp.Autoscaler().Status()
		fmt.Printf("\nday complete in %s simulated\n", p.Now().Sub(start).Round(time.Minute))
		fmt.Printf("  requests: %d sent, %d completed, %d failed\n", sent, completed, failed)
		fmt.Printf("  gateway:  %d retries, %d rejected, %d errors, %d cold-start holds\n",
			st.Retries, st.Rejected, st.Errors, st.Held)
		fmt.Printf("  scaling:  peak %d replicas, %d scale-ups, %d scale-downs, now %d\n",
			maxReplicas, ast.ScaleUps, ast.ScaleDowns, dp.CurrentReplicas())

		switch {
		case failed > 0 || st.Errors > 0:
			failure = fmt.Errorf("user-visible failures: %d failed requests, %d gateway errors", failed, st.Errors)
		case maxReplicas < 2:
			failure = fmt.Errorf("replica count never tracked the peak (max %d)", maxReplicas)
		case !sawZero || dp.CurrentReplicas() != 0:
			failure = fmt.Errorf("set never scaled to zero (now %d)", dp.CurrentReplicas())
		case st.Held == 0:
			failure = fmt.Errorf("no request was ever cold-start queued at the gateway")
		default:
			fmt.Println("\nreplica count tracked the diurnal load — zero failed requests across",
				"every scale-up, drain, and cold-start event.")
		}
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
}
