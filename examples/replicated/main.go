// Replicated: the replica-set serving path — four engine instances on
// distinct Hops nodes behind one load-balancing gateway endpoint, a
// benchmark driving the virtual endpoint, and a replica killed mid-run to
// show the control plane absorbing the failure (health checks take the dead
// replica out of rotation; in-flight requests retry on a healthy one).
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 11})
	d := core.NewDeployer(s)
	model := llm.Llama318B

	var failure error
	done := false
	s.Eng.Go("replicated", func(p *sim.Proc) {
		defer func() { done = true }()
		if failure = core.SeedModel(p, s.HopsLustre, model); failure != nil {
			return
		}

		fmt.Println("deploying 4 replicas of", model.Short, "behind one gateway endpoint...")
		start := p.Now()
		dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
			Model: model, TensorParallel: 1, MaxModelLen: 8192, Offline: true,
			Replicas: 4, RoutePolicy: "least-loaded",
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		fmt.Printf("ready in %s simulated\n  endpoint: %s\n", p.Now().Sub(start).Round(time.Second), dp.BaseURL)
		for _, r := range dp.Replicas() {
			fmt.Printf("  replica:  %s\n", r.BaseURL)
		}

		// Kill replica 1 thirty seconds into the benchmark: its in-flight
		// requests fail over to the remaining replicas, and the next health
		// probe takes it out of rotation.
		victim := dp.Replicas()[1]
		p.Engine().Schedule(30*time.Second, func() {
			fmt.Printf("\n>>> killing replica %s mid-benchmark\n\n", victim.BaseURL)
			victim.Engine().Crash(fmt.Errorf("node power loss (simulated)"))
		})

		res := bench.Run(p, &bench.HTTPTarget{
			Client:  &vhttp.Client{Net: s.Net, From: site.LoginHops},
			BaseURL: dp.BaseURL,
		}, bench.Config{
			Name: "replicated", Dataset: sharegpt.Synthesize(1, 2000),
			NumPrompts: 600, MaxConcurrency: 64, Seed: 1,
			ContinueOnError: true,
		})
		fmt.Println(res)

		gw := dp.Gateway()
		st := gw.Stats()
		fmt.Printf("gateway: %d requests, %d retried onto another replica, %d failed outright\n",
			st.Requests, st.Retries, st.Errors)
		fmt.Printf("replicas healthy after the kill: %d of %d\n", gw.HealthyBackends(), len(gw.Backends()))
		if res.Completed == 0 || gw.HealthyBackends() != 3 {
			failure = fmt.Errorf("gateway did not absorb the replica loss (completed=%d healthy=%d)",
				res.Completed, gw.HealthyBackends())
			return
		}
		fmt.Println("\nthe sweep finished despite the dead replica — no restart, no user-visible outage.")
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
}
