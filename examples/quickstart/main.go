// Quickstart: bring up the simulated converged site, deploy a small model
// on one Hops node with Podman, and send a chat completion through the
// OpenAI-compatible API — the minimal end-to-end path of the case study.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 7})
	d := core.NewDeployer(s)
	model := llm.Llama318B

	var failure error
	done := false
	s.Eng.Go("quickstart", func(p *sim.Proc) {
		defer func() { done = true }()

		// Stage the model weights onto the Hops parallel filesystem.
		if failure = core.SeedModel(p, s.HopsLustre, model); failure != nil {
			return
		}

		// Deploy: the tool picks the CUDA image, Podman flags, and offline
		// environment from package metadata.
		start := p.Now()
		dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
			Model:          model,
			TensorParallel: 1,
			MaxModelLen:    8192,
			Offline:        true,
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		fmt.Printf("deployed %s in %s of simulated time\n  endpoint: %s\n",
			model.Short, p.Now().Sub(start).Round(time.Second), dp.BaseURL)

		// Query it, Figure-7 style.
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		body, _ := json.Marshal(vllm.ChatRequest{
			Messages:  []vllm.ChatMessage{{Role: "user", Content: "How long to get from Earth to Mars?"}},
			MaxTokens: 96,
		})
		t0 := p.Now()
		resp, err := client.Do(p, &vhttp.Request{
			Method: "POST",
			URL:    dp.BaseURL + "/v1/chat/completions",
			Header: map[string]string{"Content-Type": "application/json"},
			Body:   body,
		})
		if err != nil {
			failure = err
			return
		}
		var cr vllm.ChatResponse
		json.Unmarshal(resp.Body, &cr)
		fmt.Printf("chat completion: %d prompt + %d completion tokens in %s\n",
			cr.Usage.PromptTokens, cr.Usage.CompletionTokens, p.Now().Sub(t0).Round(time.Millisecond))
		fmt.Printf("assistant: %.80s...\n", cr.Choices[0].Message.Content)
	})
	for i := 0; i < 10000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
}
