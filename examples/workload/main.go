// Workload: the million-user workload engine end to end — a declarative
// Spec (cohorts × diurnal arrivals × multi-turn sessions) drives a live
// replicated deployment open-loop, and the generated stream round-trips
// through a JSONL trace bit-identically.
//
// One table describes the traffic: an interactive chat cohort holding
// 3-turn conversations (each turn re-sends the growing history under one
// session key, so affinity + prefix caching get honest token content), and
// a batch-class report cohort firing single shots. Session starts follow a
// low/peak/low diurnal rate schedule, and arrivals are open-loop — the
// generator never slows down because the fleet does.
//
// The demo then proves determinism the way the bench harness does: the
// stream is recorded to a trace, read back, and compared request-by-request
// (same cohorts, clients, arrival micros, token lengths); regenerating from
// the trace's embedded spec must also reproduce it exactly.
//
// The acceptance bar: every interactive request completes (zero failures,
// zero sheds), the batch cohort completes work, engine prefix caches see
// hits from the multi-turn histories, and both trace comparisons are exact.
//
//	go run ./examples/workload
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/workload"
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 3})
	d := core.NewDeployer(s)
	model := llm.Llama318B

	spec := workload.Spec{
		Name: "diurnal-demo",
		Seed: 42,
		Cohorts: []workload.Cohort{
			{
				Name: "chat", Model: model.Name, Class: "interactive",
				Weight: 3, Clients: 120, Turns: 3, ThinkTime: 15 * time.Second,
				Prompt: workload.LengthDist{Mu: 4.0, Sigma: 0.5},
				Output: workload.LengthDist{Mu: 3.6, Sigma: 0.5},
			},
			{
				Name: "reports", Model: model.Name, Class: "batch",
				Weight: 1, Clients: 40,
				Prompt: workload.LengthDist{Mu: 4.5, Sigma: 0.5},
				Output: workload.LengthDist{Mu: 4.2, Sigma: 0.5},
			},
		},
		Arrivals: workload.Arrivals{Periods: []workload.RatePeriod{
			{Dur: 60 * time.Second, StartsPerSec: 0.6},
			{Dur: 2 * time.Minute, StartsPerSec: 2.0},
			{Dur: 60 * time.Second, StartsPerSec: 0.6},
		}},
	}

	var failure error
	done := false
	s.Eng.Go("workload-demo", func(p *sim.Proc) {
		defer func() { done = true }()
		if failure = core.SeedModel(p, s.HopsLustre, model); failure != nil {
			return
		}

		fmt.Println("deploying 2 session-routed replicas of", model.Short, "...")
		dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
			Model: model, TensorParallel: 1, MaxModelLen: 8192, Offline: true,
			Replicas: 2, RoutePolicy: "session",
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		fmt.Printf("  endpoint: %s\n\n", dp.BaseURL)

		// --- Generate the stream and prove trace round-trip fidelity ----
		reqs, err := workload.Generate(spec)
		if err != nil {
			failure = err
			return
		}
		st := workload.Summarize(reqs)
		fmt.Printf("generated %d requests: %d sessions from %d distinct clients over %s\n",
			st.Requests, st.Sessions, st.Clients, st.Span.Round(time.Second))
		for name, n := range st.PerCohort {
			fmt.Printf("  cohort %-8s %4d requests\n", name, n)
		}

		var buf bytes.Buffer
		if err := workload.WriteTrace(&buf, spec, reqs); err != nil {
			failure = err
			return
		}
		traceSpec, replayed, err := workload.ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			failure = err
			return
		}
		if err := workload.Identical(reqs, replayed); err != nil {
			failure = fmt.Errorf("trace read-back diverged: %w", err)
			return
		}
		regen, err := workload.Generate(traceSpec)
		if err != nil {
			failure = err
			return
		}
		if err := workload.Identical(reqs, regen); err != nil {
			failure = fmt.Errorf("regeneration from traced spec diverged: %w", err)
			return
		}
		fmt.Printf("trace round-trip: %d records replay and regenerate bit-identically\n\n", len(replayed))

		// --- Drive the stream open-loop through the gateway -------------
		fmt.Println("replaying the stream against the deployment (open loop)...")
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		res := bench.RunWorkload(p, &bench.HTTPTarget{Client: client, BaseURL: dp.BaseURL}, spec.Name, reqs)
		fmt.Print(res)

		hits := 0
		for _, b := range dp.Gateway().Backends() {
			snap := b.Telemetry()
			fmt.Printf("  replica %-12s prefix hit rate %5.1f%% (%d hits)\n",
				b.Name, snap.PrefixHitRate()*100, snap.PrefixHits)
			hits += int(snap.PrefixHits)
		}

		chat := res.Cohort("chat")
		switch {
		case res.Requests != len(reqs):
			failure = fmt.Errorf("drove %d of %d requests", res.Requests, len(reqs))
		case chat == nil || chat.Failed > 0 || chat.Shed > 0:
			failure = fmt.Errorf("interactive cohort lost requests: %+v", chat)
		case res.Cohort("reports") == nil || res.Cohort("reports").Completed == 0:
			failure = fmt.Errorf("batch cohort completed nothing")
		case hits == 0:
			failure = fmt.Errorf("multi-turn sessions produced no prefix-cache hits")
		default:
			fmt.Printf("\nworkload engine held up: %d/%d completed, interactive intact, "+
				"%d prefix hits from replayed conversations.\n", res.Completed, res.Requests, hits)
		}
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
	if !done {
		log.Fatal("simulation did not converge")
	}
}
