// Streaming: the token-streaming data plane end to end — a pinned-session
// conversation over SSE, with first-token latency printed next to the
// whole-response latency for every turn.
//
// Two replicas serve one chat model behind a session-affine gateway. A
// single conversation sends sequential turns with stream:true; each turn
// re-sends the grown history, so prompts get longer and the buffered wait
// would grow with them. The streamed client instead sees its first token
// as soon as prefill finishes — the gap between the two columns is what
// the streaming data plane buys an interactive user.
//
//	go run ./examples/streaming
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 7})
	d := core.NewDeployer(s)
	model := llm.Llama318B

	var failure error
	done := false
	s.Eng.Go("streaming-demo", func(p *sim.Proc) {
		defer func() { done = true }()
		if failure = core.SeedModel(p, s.HopsLustre, model); failure != nil {
			return
		}

		fmt.Println("deploying 2 replicas behind a session-affine gateway...")
		dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
			Model: model, TensorParallel: 1, MaxModelLen: 16384, Offline: true,
			Replicas: 2, RoutePolicy: "session",
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		fmt.Printf("  endpoint: %s\n\n", dp.BaseURL)

		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		history := []vllm.ChatMessage{}
		const turns = 8
		var ttftSum, e2eSum time.Duration

		fmt.Println("turn  prompt   first token   whole response")
		for i := 0; i < turns; i++ {
			history = append(history, vllm.ChatMessage{
				Role: "user",
				Content: fmt.Sprintf("Turn %d: keep going — more detail on the cluster, "+
					"its filesystems, and how the GPU partitions are laid out.", i),
			})
			body, _ := json.Marshal(vllm.ChatRequest{
				Messages: history, MaxTokens: 192, SessionID: "alice", Stream: true,
			})
			t0 := p.Now()
			resp, err := client.Do(p, &vhttp.Request{
				Method: "POST", URL: dp.BaseURL + "/v1/chat/completions",
				Header: map[string]string{"Content-Type": "application/json"},
				Body:   body,
			})
			if err != nil || resp.Status != 200 || resp.Stream == nil {
				failure = fmt.Errorf("turn %d: not a streamed 200: %v %+v", i, err, resp)
				return
			}
			var ttft time.Duration
			var reply strings.Builder
			var prompt int
			for {
				ch, ok := resp.Stream.Next(p)
				if !ok {
					break
				}
				payload, isEvent := vllm.ParseSSE(ch.Data)
				if !isEvent || string(payload) == "[DONE]" {
					continue
				}
				var chunk vllm.ChatChunk
				if json.Unmarshal(payload, &chunk) != nil || len(chunk.Choices) == 0 {
					continue
				}
				if c := chunk.Choices[0].Delta.Content; c != "" {
					if ttft == 0 {
						ttft = p.Now().Sub(t0)
					}
					reply.WriteString(c)
				}
				if chunk.Usage != nil {
					prompt = chunk.Usage.PromptTokens
				}
			}
			if err := resp.Stream.Err(); err != nil {
				failure = fmt.Errorf("turn %d: stream truncated: %v", i, err)
				return
			}
			e2e := p.Now().Sub(t0)
			ttftSum += ttft
			e2eSum += e2e
			fmt.Printf("%4d  %6d   %11s   %14s\n",
				i, prompt, ttft.Round(time.Millisecond), e2e.Round(time.Millisecond))
			// Fold the streamed answer back into the conversation.
			history = append(history, vllm.ChatMessage{Role: "assistant", Content: reply.String()})
			p.Sleep(5 * time.Second) // think time between turns
		}

		gw := dp.Gateway()
		st := gw.Stats()
		meanTTFT := ttftSum / turns
		meanE2E := e2eSum / turns
		fmt.Printf("\nmean first token %s vs mean whole response %s (%.1fx earlier)\n",
			meanTTFT.Round(time.Millisecond), meanE2E.Round(time.Millisecond),
			float64(meanE2E)/float64(meanTTFT))
		fmt.Printf("gateway: %d streams, %d truncated, %d retries\n",
			st.Streams, st.StreamsTruncated, st.Retries)
		switch {
		case meanTTFT <= 0 || meanTTFT*2 >= meanE2E:
			failure = fmt.Errorf("first-token latency %s did not beat whole-response %s", meanTTFT, meanE2E)
		case st.Streams != turns || st.StreamsTruncated != 0:
			failure = fmt.Errorf("gateway stream accounting off: %+v", st)
		}
	})
	for i := 0; i < 10000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
	if !done {
		log.Fatal("simulation did not converge")
	}
}
