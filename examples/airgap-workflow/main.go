// Airgap-workflow: the complete §3 case study end to end — download a model
// repository from the upstream hub with the git container (Fig 2), sync it
// into site object storage with the AWS client container excluding .git
// (Fig 3), stage it onto the Hops parallel filesystem, deploy a persistent
// Compute-as-Login service, query it from a laptop through the NGINX
// gateway (Fig 7), and run a short benchmark sweep (Fig 8).
//
//	go run ./examples/airgap-workflow
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 21})
	d := core.NewDeployer(s)
	model := llm.Llama318B

	var failure error
	done := false
	s.Eng.Go("workflow", func(p *sim.Proc) {
		defer func() { done = true }()

		fmt.Println("[1/5] downloading model repository from the hub (git container on build01)...")
		t0 := p.Now()
		if failure = d.FetchModel(p, model, "hf_token"); failure != nil {
			return
		}
		fmt.Printf("      cloned %.1f GiB and synced to s3://%s/%s in %s\n",
			float64(model.RepoBytes())/(1<<30), site.ModelBucket, model.Name, p.Now().Sub(t0).Round(time.Second))

		fmt.Println("[2/5] fixing the Hops↔S3 route (the §2.4 order-of-magnitude change)...")
		s.FixHopsS3Routing()

		fmt.Println("[3/5] staging from object storage onto hops-lustre (aws-cli container)...")
		t0 = p.Now()
		if failure = d.StageModel(p, core.PlatformHops, model); failure != nil {
			return
		}
		fmt.Printf("      staged in %s\n", p.Now().Sub(t0).Round(time.Second))

		fmt.Println("[4/5] deploying as a persistent Compute-as-Login service...")
		t0 = p.Now()
		dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
			Model: model, TensorParallel: 1, MaxModelLen: 8192, Offline: true, Persistent: true,
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		fmt.Printf("      ready in %s — internal %s, external %s\n",
			p.Now().Sub(t0).Round(time.Second), dp.BaseURL, dp.ExternalURL)

		// Query from off-site through the gateway.
		laptop := &vhttp.Client{Net: s.Net, From: "laptop"}
		body, _ := json.Marshal(vllm.ChatRequest{
			Messages:  []vllm.ChatMessage{{Role: "user", Content: "How long to get from Earth to Mars?"}},
			MaxTokens: 64,
		})
		resp, err := laptop.Do(p, &vhttp.Request{
			Method: "POST", URL: dp.ExternalURL + "/v1/chat/completions",
			Header: map[string]string{"Content-Type": "application/json", "Authorization": "Bearer secret-api-key"},
			Body:   body,
		})
		if err != nil || resp.Status != 200 {
			failure = fmt.Errorf("gateway query: %v (%d)", err, resp.Status)
			return
		}
		fmt.Println("      laptop → CaL gateway → compute node round trip OK")

		fmt.Println("[5/5] benchmark sweep (abbreviated)...")
		results := bench.Sweep(p, &bench.HTTPTarget{
			Client: &vhttp.Client{Net: s.Net, From: site.LoginHops}, BaseURL: dp.BaseURL,
		}, bench.Config{
			Name: "cal-8b", Dataset: sharegpt.Synthesize(4, 2000), NumPrompts: 300, Seed: 9,
		}, []int{1, 8, 64})
		for _, r := range results {
			fmt.Printf("      c=%-4d → %7.1f output tok/s (p99 TTFT %.0f ms)\n",
				r.Concurrency, r.OutputThroughput, r.TTFT.P99())
		}
		fmt.Println("workflow complete.")
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
}
