// Multinode: §3.5 as a runnable program — Llama 3.1 405B served across four
// Hops nodes (16 H100s, TP4 within nodes × PP4 between them) on a Ray
// cluster bootstrapped from per-node vLLM containers, including the
// worker-loss failure mode the paper observed.
//
//	go run ./examples/multinode
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 3})
	d := core.NewDeployer(s)
	model := llm.Llama31405B

	var failure error
	done := false
	s.Eng.Go("multinode", func(p *sim.Proc) {
		defer func() { done = true }()
		if failure = core.SeedModel(p, s.HopsLustre, model); failure != nil {
			return
		}
		fmt.Printf("deploying %s (%.0f GiB weights) across 4 nodes...\n",
			model.Short, float64(model.WeightBytes())/(1<<30))
		start := p.Now()
		dp, err := d.Deploy(p, core.VLLMPackage(), core.PlatformHops, core.DeployConfig{
			Model: model, TensorParallel: 4, PipelineParallel: 4,
			MaxModelLen: 32768, Offline: true,
		})
		if err != nil {
			failure = err
			return
		}
		defer dp.Stop()
		fmt.Printf("ready in %s simulated (Ray cluster + weight load + warmup)\n",
			p.Now().Sub(start).Round(time.Second))

		// Single-query latency at batch 1 (paper: ~12.5 tok/s).
		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		body, _ := json.Marshal(vllm.ChatRequest{
			Messages: []vllm.ChatMessage{{Role: "user", Content: "Summarize pipeline parallelism."}}, MaxTokens: 128,
		})
		t0 := p.Now()
		resp, err := client.Do(p, &vhttp.Request{Method: "POST", URL: dp.BaseURL + "/v1/chat/completions", Body: body})
		if err != nil || resp.Status != 200 {
			failure = fmt.Errorf("chat: %v (%d)", err, resp.Status)
			return
		}
		dur := p.Now().Sub(t0)
		fmt.Printf("batch-1: 128 tokens in %s → %.1f tok/s\n", dur.Round(time.Millisecond), 128/dur.Seconds())

		// A short throughput point at high concurrency.
		res := bench.Run(p, &bench.HTTPTarget{Client: client, BaseURL: dp.BaseURL},
			bench.Config{Name: "405b", Dataset: sharegpt.Synthesize(2, 2000), NumPrompts: 500, MaxConcurrency: 256, Seed: 1})
		fmt.Printf("batch-256: %.0f output tok/s over %d requests\n", res.OutputThroughput, res.Completed)

		// Multi-node unreliability: lose a worker mid-flight. Ray's failure
		// detection propagates into the engine, failing in-flight requests —
		// the Fig 12 run-1 behaviour.
		fmt.Println("\ninjecting worker loss (NCCL watchdog timeout)...")
		eng := dp.Engine()
		dp.LoseRayWorker()
		p.Sleep(time.Second)
		if crashed, cerr := eng.Crashed(); crashed {
			fmt.Printf("engine crashed as expected: %v\n", cerr)
		} else {
			failure = fmt.Errorf("worker loss did not propagate")
			return
		}
		fmt.Println("as in the paper, multi-node serving is powerful but fragile: restart required.")
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
}
