// SLO: the request-scheduling layer end to end — SLO-aware admission,
// priority classes, and session-affinity routing on a shared GPU pool.
//
// Two models share a 4-node pool behind one routing endpoint: an
// interactive chat model with a tight p95 latency objective and
// session-affine routing, and a bulk model whose traffic is all
// batch-class. The demo runs three acts:
//
//  1. Multi-turn affinity: one conversation sends sequential turns; every
//     turn must land on the same replica (warm KV cache), picked by
//     consistent hashing on the session key.
//  2. Saturation spill: the same conversation turns into a flood. Once the
//     affine replica's queue passes the spill threshold, the session
//     spills to the least-loaded replica instead of queueing behind it.
//  3. SLO shed under burst: interactive and batch traffic burst on the
//     chat model together, past what its replicas can serve inside the
//     objective. The gateway's rolling p95 breaches the SLO, the breaker
//     engages, and batch-class requests shed with 503 + Retry-After while
//     every interactive request completes.
//
// The acceptance bar: zero failed interactive requests across all three
// acts, batch traffic visibly shed under the burst, the single session
// pinned to one replica until the spill, and spills observed once it
// saturates.
//
//	go run ./examples/slo
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/vhttp"
	"repro/internal/vllm"
)

const (
	chat      = "chat"
	bulk      = "bulk"
	poolNodes = 4
	sloP95    = 6 * time.Second
)

func main() {
	s := site.New(site.Options{Small: true, Seed: 7})
	d := core.NewDeployer(s)

	var failure error
	done := false
	s.Eng.Go("slo-demo", func(p *sim.Proc) {
		defer func() { done = true }()
		for _, m := range []*llm.ModelSpec{llm.Llama318B, llm.Qwen25Coder7B} {
			if failure = core.SeedModel(p, s.HopsLustre, m); failure != nil {
				return
			}
		}

		fmt.Printf("deploying a 2-model fleet on a shared %d-node pool ...\n", poolNodes)
		fleet, err := d.DeployFleet(p, core.VLLMPackage(), core.PlatformHops, core.FleetConfig{PoolNodes: poolNodes}, []core.FleetModel{
			{Weight: 2, Config: core.DeployConfig{
				Model: llm.Llama318B, ServedName: chat, TensorParallel: 1,
				MaxModelLen: 8192, Offline: true, Replicas: 2,
				RoutePolicy: "session", SLOTargetP95: sloP95,
			}},
			{Weight: 1, Config: core.DeployConfig{
				Model: llm.Qwen25Coder7B, ServedName: bulk, TensorParallel: 1,
				MaxModelLen: 8192, Offline: true, Replicas: 2,
				RoutePolicy: "least-loaded", PriorityClass: "batch",
			}},
		})
		if err != nil {
			failure = err
			return
		}
		defer fleet.Stop()
		gw := fleet.Deployment(chat).Gateway()
		fmt.Printf("endpoint: %s routes %v\n", fleet.BaseURL, fleet.Models())
		fmt.Printf("  %s: session-affine routing, p95 objective %s\n", chat, sloP95)
		fmt.Printf("  %s: least-loaded, batch priority class\n\n", bulk)

		client := &vhttp.Client{Net: s.Net, From: site.LoginHops}
		ask := func(model, session, priority string, maxTokens int) *vhttp.Request {
			body, _ := json.Marshal(vllm.ChatRequest{
				Model:     model,
				Messages:  []vllm.ChatMessage{{Role: "user", Content: "Continue our conversation about the cluster."}},
				MaxTokens: maxTokens,
				SessionID: session,
				Priority:  priority,
			})
			return &vhttp.Request{
				Method: "POST", URL: fleet.BaseURL + "/v1/chat/completions",
				Header: map[string]string{"Content-Type": "application/json"},
				Body:   body,
			}
		}
		backendRequests := func() map[string]int {
			out := map[string]int{}
			for _, b := range gw.Backends() {
				out[b.Name] = b.Requests()
			}
			return out
		}

		// --- Act 1: multi-turn session affinity -------------------------
		// A real conversation: every turn re-sends the whole history plus a
		// fresh question and folds the answer back in, so the prompt grows
		// and — because affinity pins the session to one replica — each
		// turn's shared prefix is already resident in that engine's prefix
		// cache and skips prefill.
		fmt.Println("--- act 1: one conversation, sequential turns ---")
		before := backendRequests()
		const turns = 12
		history := []vllm.ChatMessage{}
		for i := 0; i < turns; i++ {
			history = append(history, vllm.ChatMessage{
				Role: "user",
				Content: fmt.Sprintf("Turn %d: tell me more about the cluster — its scheduler, "+
					"its filesystems, its container runtimes, and how the GPU partitions are laid out.", i),
			})
			body, _ := json.Marshal(vllm.ChatRequest{
				Model: chat, Messages: history, MaxTokens: 64, SessionID: "alice",
			})
			resp, err := client.Do(p, &vhttp.Request{
				Method: "POST", URL: fleet.BaseURL + "/v1/chat/completions",
				Header: map[string]string{"Content-Type": "application/json"},
				Body:   body,
			})
			if err != nil || resp.Status != 200 {
				failure = fmt.Errorf("turn %d failed: %v %v", i, err, resp)
				return
			}
			var cr vllm.ChatResponse
			if json.Unmarshal(resp.Body, &cr) == nil && len(cr.Choices) > 0 {
				history = append(history, cr.Choices[0].Message)
			}
			p.Sleep(10 * time.Second) // think time between turns
		}
		affine, spread := "", 0
		for name, n := range backendRequests() {
			if delta := n - before[name]; delta > 0 {
				affine = name
				spread++
				fmt.Printf("  replica %-12s served %2d/%d turns\n", name, delta, turns)
			}
		}
		if spread != 1 {
			failure = fmt.Errorf("session spread across %d replicas, want 1 (KV-cache locality)", spread)
			return
		}
		fmt.Printf("  session pinned to %s for all %d turns, %d spills\n\n", affine, turns, gw.SessionSpills())

		// --- Act 2: the session floods its affine replica ---------------
		fmt.Println("--- act 2: the same session saturates its replica ---")
		inflight := s.Eng.NewGroup()
		rng := s.Eng.Rand()
		floodSent, floodFailed := 0, 0
		before = backendRequests()
		end := p.Now().Add(4 * time.Minute)
		for p.Now().Before(end) {
			p.Sleep(time.Duration(rng.ExpFloat64() / 2.5 * float64(time.Second)))
			floodSent++
			inflight.Add(1)
			s.Eng.Go(fmt.Sprintf("flood-%d", floodSent), func(rp *sim.Proc) {
				defer inflight.Finish()
				if resp, err := client.Do(rp, ask(chat, "alice", "", 96)); err != nil || resp.Status != 200 {
					floodFailed++
				}
			})
		}
		inflight.WaitAll(p)
		spills := gw.SessionSpills()
		for name, n := range backendRequests() {
			if delta := n - before[name]; delta > 0 {
				fmt.Printf("  replica %-12s served %3d flood requests\n", name, delta)
			}
		}
		fmt.Printf("  %d requests, %d failed, %d saturation spills off %s\n\n", floodSent, floodFailed, spills, affine)
		if floodFailed > 0 {
			failure = fmt.Errorf("act 2: %d interactive flood requests failed", floodFailed)
			return
		}
		if spills == 0 {
			failure = fmt.Errorf("act 2: the saturated affine replica never spilled")
			return
		}

		// --- Act 3: SLO shed under a mixed-class burst ------------------
		fmt.Println("--- act 3: interactive + batch burst past the SLO ---")
		sent := map[string]int{}
		failed := map[string]int{}
		shed := 0
		load := func(model, session, priority string, rps float64, dur time.Duration) {
			inflight.Add(1)
			s.Eng.Go("load-"+model+priority, func(lp *sim.Proc) {
				defer inflight.Finish()
				end := lp.Now().Add(dur)
				n := 0
				for lp.Now().Before(end) {
					lp.Sleep(time.Duration(rng.ExpFloat64() / rps * float64(time.Second)))
					if !lp.Now().Before(end) {
						break
					}
					n++
					key := model + "/" + priority
					sess := session
					if sess != "" {
						sess = fmt.Sprintf("%s-%d", session, n%8)
					}
					sent[key]++
					inflight.Add(1)
					s.Eng.Go(fmt.Sprintf("burst-%s-%d", key, n), func(rp *sim.Proc) {
						defer inflight.Finish()
						resp, err := client.Do(rp, ask(model, sess, priority, 256))
						switch {
						case err == nil && resp.Status == 503 && priority == "batch":
							shed++
						case err != nil || resp.Status != 200:
							failed[key]++
						}
					})
				}
			})
		}
		load(chat, "burst", "interactive", 4.5, 10*time.Minute)
		load(chat, "", "batch", 4.0, 10*time.Minute)
		load(bulk, "", "", 0.4, 10*time.Minute) // bulk's own batch-class work
		inflight.WaitAll(p)
		// Let the engines drain so the post-burst p95 is honest.
		p.Sleep(2 * time.Minute)

		slo, _ := gw.SLO()
		fmt.Printf("  %-18s sent %3d, failed %d\n", chat+"/interactive", sent[chat+"/interactive"], failed[chat+"/interactive"])
		fmt.Printf("  %-18s sent %3d, shed %d (503 + Retry-After)\n", chat+"/batch", sent[chat+"/batch"], shed)
		fmt.Printf("  %-18s sent %3d, failed %d\n", bulk, sent[bulk+"/"], failed[bulk+"/"])
		fmt.Printf("  slo: objective %s, breaker sheds %d, p95 now %.1fs\n\n",
			sloP95, slo.Sheds, slo.P95M/1000)

		// End-of-run engine telemetry: what the gateway's typed probes saw
		// last on each replica — the prefix-cache payoff of session
		// affinity and the KV residency behind it.
		fmt.Println("--- per-replica engine telemetry (typed /telemetry probes) ---")
		hitSeen := false
		for _, model := range fleet.Models() {
			for _, b := range fleet.Deployment(model).Gateway().Backends() {
				snap := b.Telemetry()
				fmt.Printf("  %-8s %-12s prefix hit rate %5.1f%%  kv usage %5.1f%% (%d/%d blocks, %d reclaimable cache)\n",
					model, b.Name, snap.PrefixHitRate()*100, snap.KVUsage()*100,
					snap.KVBlocksUsed, snap.KVBlocksTotal, snap.KVBlocksCached)
				if snap.PrefixHits > 0 {
					hitSeen = true
				}
			}
		}
		fmt.Println()

		totalInteractiveFailed := failed[chat+"/interactive"] + failed[bulk+"/"] + failed[chat+"/batch"]
		switch {
		case totalInteractiveFailed > 0:
			failure = fmt.Errorf("act 3: %d non-shed requests failed", totalInteractiveFailed)
		case shed == 0:
			failure = fmt.Errorf("act 3: the SLO breaker never shed batch traffic")
		case slo.Sheds == 0:
			failure = fmt.Errorf("act 3: gateway SLO status shows no sheds")
		case !hitSeen:
			failure = fmt.Errorf("no replica reported prefix-cache hits; session affinity bought no engine-level reuse")
		default:
			st := gw.Stats()
			fmt.Printf("scheduling layer held the line: %d requests through the %s gateway, "+
				"%d batch sheds, 0 failed interactive requests;\n"+
				"one conversation stayed on one replica until saturation, then spilled %d times.\n",
				st.Requests, chat, st.Rejected, spills)
		}
	})
	for i := 0; i < 20000 && !done; i++ {
		s.Eng.RunFor(time.Minute)
	}
	if failure != nil {
		log.Fatal(failure)
	}
	if !done {
		log.Fatal("simulation did not converge")
	}
}
