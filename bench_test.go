// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation as testing.B benchmarks (thinned sweeps), plus
// micro-benchmarks of the performance-critical substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Full-resolution figure data comes from `go run ./cmd/figures -all`.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/llm"
	"repro/internal/netsim"
	"repro/internal/sharegpt"
	"repro/internal/sim"
	"repro/internal/vllm"
	"repro/internal/yamlite"
)

// benchExperiment runs one experiment per iteration and reports the headline
// measurement as a custom metric.
func benchExperiment(b *testing.B, id string, metric string) {
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOne(id, experiments.Options{Quick: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range res.Anchors {
			if a.Name == metric {
				last = a.Measured
			}
		}
	}
	if last != 0 {
		b.ReportMetric(last, "tok/s")
	}
}

// BenchmarkFig9 regenerates Figure 9 (Hops vs El Dorado, Scout TP4).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9", "Hops max throughput") }

// BenchmarkFig10 regenerates Figure 10 (quantized Scout, Hops vs Goodall).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", "Goodall w4a16 max throughput") }

// BenchmarkFig12 regenerates Figure 12 (405B multi-node over Ray).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12", "405B max throughput") }

// BenchmarkStartup regenerates the startup table (§3.3 "30 minutes or more").
func BenchmarkStartup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOne("startup", experiments.Options{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryPull regenerates the §2.3 registry-bottleneck table.
func BenchmarkRegistryPull(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOne("regpull", experiments.Options{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkS3Routing regenerates the §2.4 routing-fix measurement.
func BenchmarkS3Routing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOne("s3route", experiments.Options{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngressFailover regenerates the CaL-vs-Kubernetes recovery table.
func BenchmarkIngressFailover(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOne("ingress", experiments.Options{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantAblation regenerates the bf16-vs-w4a16 ablation.
func BenchmarkQuantAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOne("quant", experiments.Options{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAblation regenerates the TP×PP layout ablation.
func BenchmarkParallelAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOne("parallel", experiments.Options{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxLenGate regenerates the --max-model-len capacity table.
func BenchmarkMaxLenGate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOne("maxlen", experiments.Options{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -----------------------------------------

// BenchmarkEngineServing measures the simulated vLLM engine itself: one
// full 1000-request benchmark at concurrency 256 per iteration.
func BenchmarkEngineServing(b *testing.B) {
	b.ReportAllocs()
	ds := sharegpt.Synthesize(1, 4000)
	var tput float64
	for i := 0; i < b.N; i++ {
		se := sim.NewEngine(int64(i))
		e, err := vllm.New(se, vllm.Config{
			Model: llm.Scout, GPU: hw.H100SXM, TensorParallel: 4, MaxModelLen: 65536,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
		var res *bench.Result
		se.Go("bench", func(p *sim.Proc) {
			res = bench.Run(p, &bench.EngineTarget{Engine: e}, bench.Config{
				Name: "bench", Dataset: ds, NumPrompts: 1000, MaxConcurrency: 256, Seed: int64(i),
			})
		})
		se.Run()
		tput = res.OutputThroughput
	}
	b.ReportMetric(tput, "sim-tok/s")
}

// BenchmarkKVCache measures allocator throughput (allocate/grow/release).
func BenchmarkKVCache(b *testing.B) {
	b.ReportAllocs()
	kv := vllm.NewKVCache(1<<20, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("s%d", i%1024)
		kv.EnsureTokens(id, 512)
		if i%3 == 2 {
			kv.Release(id)
		}
	}
}

// BenchmarkNetsimContention measures max-min reallocation with 64 flows
// arriving and draining on a shared bottleneck.
func BenchmarkNetsimContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		fb := netsim.New(eng)
		shared := fb.AddLink("shared", 1e9, 0)
		for j := 0; j < 64; j++ {
			nic := fb.AddLink(fmt.Sprintf("nic-%d", j), 1e10, 0)
			sz := float64(1e8 + j*1e6)
			delay := time.Duration(j) * time.Millisecond
			eng.Schedule(delay, func() {
				fb.Start(sz, []*netsim.Link{shared, nic}, netsim.StartOptions{})
			})
		}
		eng.Run()
	}
}

// BenchmarkSimEngine measures raw event throughput of the DES core.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			eng.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.Schedule(0, tick)
	eng.Run()
}

// BenchmarkYAMLParse measures the manifest parser on the vLLM chart values.
func BenchmarkYAMLParse(b *testing.B) {
	b.ReportAllocs()
	doc := []byte(`
image:
  repository: "vllm/vllm-openai"
  tag: "v0.9.1"
  command: ["vllm", "serve", "/data/", "--port", "8000"]
env:
  - name: HOME
    value: "/data"
  - name: HF_HUB_DISABLE_TELEMETRY
    value: "1"
resources:
  limits:
    nvidia.com/gpu: 4
`)
	for i := 0; i < b.N; i++ {
		if _, err := yamlite.Parse(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfModel measures step-time evaluation (hot path of the engine).
func BenchmarkPerfModel(b *testing.B) {
	params := vllm.LookupParams(llm.Llama31405B, hw.H100SXM, 4, 4, 4)
	var acc time.Duration
	for i := 0; i < b.N; i++ {
		acc += params.StepTime(i%1024, i%256)
	}
	_ = acc
}
